//! Failure events and restart-cost accounting for simulated training runs.
//!
//! The event engine (`simulate`) prices one iteration; this module prices
//! a *run*: `iters` iterations with a snapshot cadence, one scripted
//! failure ([`opt_ckpt::FaultPlan`], the same plan the numerical trainer
//! replays), and an elastic restart — detection, relaunch, snapshot read,
//! and replay of every iteration since the newest snapshot. The output is
//! the checkpoint-cadence trade-off the `exp_fault_tolerance` experiment
//! sweeps: frequent snapshots cost steady-state write time, rare snapshots
//! cost replay time after a failure.

use crate::{simulate, SimConfig};
use opt_ckpt::FaultPlan;
use serde::{Deserialize, Serialize};

/// Which wire a shard moves over — the transport dimension of the cost
/// model, matching `opt-net`'s two `ShardStore` deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreTransport {
    /// In-process store (`MemShardStore` reached through shared memory):
    /// a memory copy, no connection setup, no framing on a wire.
    Local,
    /// Remote store over TCP (`TcpShardStore` -> `ShardStoreServer`): one
    /// connection round-trip per operation plus the NIC-bound transfer of
    /// the framed request/response.
    Tcp,
}

/// Cost model for checkpoint I/O and failure handling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CkptCostModel {
    /// Seconds from the failure to the job being torn down (NCCL timeout +
    /// watchdog detection).
    pub detection_s: f64,
    /// Seconds for the scheduler to relaunch and rendezvous the world.
    pub relaunch_s: f64,
    /// Aggregate snapshot read/write bandwidth in bytes/s (parallel file
    /// system, shared by all ranks) — the monolithic path.
    pub disk_bw: f64,
    /// Per-rank fetch/publish bandwidth to the shard store in bytes/s —
    /// the sharded path, where every rank moves only its own `1/world`
    /// slice in parallel over its own NIC.
    pub shard_fetch_bw: f64,
    /// Seconds to resolve the shard manifest (the rendezvous round-trip a
    /// restarting worker pays before its fetch starts).
    pub rendezvous_s: f64,
    /// In-process copy bandwidth in bytes/s — what a shard operation
    /// costs when the store is local memory rather than a wire
    /// ([`StoreTransport::Local`]).
    pub mem_bw: f64,
    /// Per-operation TCP setup cost in seconds (connect + request
    /// round-trip framing) on [`StoreTransport::Tcp`] — the real
    /// `TcpShardStore` opens one connection per put/get.
    pub tcp_connect_s: f64,
    /// Seconds for the coordinator's heartbeat failure detector to flag a
    /// dead rank (`OPT_NET_HEARTBEAT_MS × OPT_NET_HEARTBEAT_MISSES` plus
    /// a poll) — the elastic-rejoin replacement for the NCCL-timeout
    /// `detection_s`.
    pub hb_detection_s: f64,
    /// Seconds for the survivors to drain in-flight work and park at the
    /// quiesce barrier before a replacement splices in.
    pub quiesce_s: f64,
    /// Seconds to relaunch and re-mesh **one** replacement rank into the
    /// surviving world — the single-rank counterpart of the whole-world
    /// `relaunch_s`.
    pub rank_relaunch_s: f64,
}

impl CkptCostModel {
    /// Defaults in the spirit of the paper's 128×A100 cluster: a 30 s
    /// NCCL-timeout detection, 60 s relaunch, 10 GB/s aggregate burst
    /// buffer bandwidth, 25 GB/s per-rank shard fetches (200 Gb/s
    /// Infiniband HDR), a 1 s manifest rendezvous, 100 GB/s in-process
    /// memory copies, and a 0.5 ms per-operation TCP setup.
    /// Rejoin-path constants: a ~3 s heartbeat verdict (conservative
    /// interval × misses at cluster scale), a 0.5 s survivor quiesce, and
    /// a 5 s single-rank relaunch (one container restart + mesh splice,
    /// no scheduler round-trip for the whole gang).
    pub fn paper_cluster() -> Self {
        Self {
            detection_s: 30.0,
            relaunch_s: 60.0,
            disk_bw: 10e9,
            shard_fetch_bw: 25e9,
            rendezvous_s: 1.0,
            mem_bw: 100e9,
            tcp_connect_s: 0.5e-3,
            hb_detection_s: 3.0,
            quiesce_s: 0.5,
            rank_relaunch_s: 5.0,
        }
    }

    /// Wall-clock seconds to move a full `bytes` checkpoint through the
    /// shared filesystem — the monolithic broadcast: every rank's state
    /// funnels through one aggregate pipe.
    pub fn monolithic_io_s(&self, bytes: f64) -> f64 {
        bytes / self.disk_bw
    }

    /// Wall-clock seconds for a sharded restore: one manifest rendezvous,
    /// then all `world` ranks fetch their own `bytes / world` shard in
    /// parallel — the slowest rank (any rank, they are symmetric) gates
    /// completion. Priced at NIC bandwidth (the historical default,
    /// equivalent to [`StoreTransport::Tcp`] minus per-op setup).
    pub fn sharded_io_s(&self, bytes: f64, world: usize) -> f64 {
        self.rendezvous_s + self.sharded_publish_s(bytes, world)
    }

    /// Wall-clock seconds for a sharded snapshot *write*: every rank
    /// publishes its own shard under a name it already knows, in
    /// parallel, so no rendezvous lookup is paid (the trailing manifest
    /// put is a few hundred bytes — negligible).
    pub fn sharded_publish_s(&self, bytes: f64, world: usize) -> f64 {
        bytes / world.max(1) as f64 / self.shard_fetch_bw
    }

    /// Bandwidth one rank sees to the store over `transport`.
    pub fn store_bw(&self, transport: StoreTransport) -> f64 {
        match transport {
            StoreTransport::Local => self.mem_bw,
            StoreTransport::Tcp => self.shard_fetch_bw,
        }
    }

    /// Per-operation fixed cost of the store over `transport`: zero for a
    /// shared-memory store, a connection setup for the TCP store.
    pub fn store_op_s(&self, transport: StoreTransport) -> f64 {
        match transport {
            StoreTransport::Local => 0.0,
            StoreTransport::Tcp => self.tcp_connect_s,
        }
    }

    /// [`CkptCostModel::sharded_publish_s`] with the transport dimension:
    /// each rank pays one store operation plus its `bytes / world` slice
    /// at the transport's bandwidth (the ~28-byte frame around each
    /// request is noise against megabyte shards and is folded into the
    /// per-op constant).
    pub fn sharded_publish_s_via(
        &self,
        bytes: f64,
        world: usize,
        transport: StoreTransport,
    ) -> f64 {
        self.store_op_s(transport) + bytes / world.max(1) as f64 / self.store_bw(transport)
    }

    /// [`CkptCostModel::sharded_io_s`] with the transport dimension: a
    /// restore additionally pays the manifest rendezvous (itself one more
    /// store operation on the wire).
    pub fn sharded_io_s_via(&self, bytes: f64, world: usize, transport: StoreTransport) -> f64 {
        self.rendezvous_s
            + self.store_op_s(transport)
            + self.sharded_publish_s_via(bytes, world, transport)
    }

    /// Downtime of an elastic single-rank rejoin: heartbeat detection,
    /// survivor quiesce, relaunching one rank, then the sharded restore
    /// (every rank re-fetches its own shard in parallel while the world
    /// rolls back to the manifest). Compare with the full-relaunch
    /// downtime `detection_s + relaunch_s + sharded_io_s_via(..)`.
    pub fn rejoin_downtime_s(&self, bytes: f64, world: usize, transport: StoreTransport) -> f64 {
        self.hb_detection_s
            + self.quiesce_s
            + self.rank_relaunch_s
            + self.sharded_io_s_via(bytes, world, transport)
    }
}

/// One timestamped event in a simulated faulted run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A snapshot finished writing after `iter` completed iterations.
    SnapshotWrite {
        /// Completed iterations at snapshot time.
        iter: u64,
        /// Time the write completed, seconds from run start.
        at_s: f64,
    },
    /// Worker `rank` died after `iter` completed iterations.
    Failure {
        /// The rank that died.
        rank: usize,
        /// Completed iterations when the failure struck.
        iter: u64,
        /// Failure instant, seconds from run start.
        at_s: f64,
    },
    /// The job restarted from the snapshot taken at `from_iter`
    /// (`None` = cold restart from scratch).
    Restore {
        /// Snapshot iteration resumed from.
        from_iter: Option<u64>,
        /// Time the restore (detection + relaunch + read) completed.
        at_s: f64,
    },
}

/// Wall-clock accounting of a simulated faulted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSimResult {
    /// Failure-free, snapshot-free run time: `iters * t_iter`.
    pub ideal_time_s: f64,
    /// Actual end-to-end run time.
    pub total_time_s: f64,
    /// Time spent writing snapshots.
    pub snapshot_overhead_s: f64,
    /// Detection + relaunch + snapshot-read time.
    pub restart_overhead_s: f64,
    /// Time spent re-executing iterations lost to the failure.
    pub replay_time_s: f64,
    /// Bytes of one snapshot (all ranks).
    pub snapshot_bytes: f64,
    /// Timeline of snapshot/failure/restore events.
    pub events: Vec<FaultEvent>,
}

impl FaultSimResult {
    /// Fractional slowdown over the ideal run (`0.0` = free fault
    /// tolerance).
    pub fn overhead_fraction(&self) -> f64 {
        self.total_time_s / self.ideal_time_s - 1.0
    }
}

/// Bytes a full training snapshot occupies: fp32 weights plus the two
/// fp32 Adam moments for every parameter (transformer stages + both
/// embedding replicas), the dominant state. Compression state (warm-start
/// factors, residuals) adds a few percent and is folded into the same
/// per-parameter constant.
pub fn snapshot_bytes(cfg: &SimConfig) -> f64 {
    let stage_params: u64 = (0..cfg.pp).map(|s| cfg.stage_params(s)).sum();
    let emb_params = 2 * cfg.model.embedding_params();
    ((stage_params + emb_params) * 12) as f64
}

/// Simulates `iters` training iterations under `plan`, pricing snapshot
/// writes and the elastic restart with `costs`.
///
/// Mirrors `optimus_cc::run_with_faults` event for event: snapshot after
/// every `snapshot_every`-th iteration (except the last), one failure once
/// `kill_at_iter` iterations complete, restart from the newest snapshot
/// (or from scratch), replay the lost iterations, finish the run.
///
/// # Example
///
/// ```
/// use opt_ckpt::FaultPlan;
/// use opt_sim::{simulate_with_faults, CkptCostModel, SimConfig};
///
/// let cfg = SimConfig::paper_gpt_2_5b();
/// let costs = CkptCostModel::paper_cluster();
/// let r = simulate_with_faults(&cfg, 100, &FaultPlan::new(3, 55, 10), &costs);
/// assert!(r.total_time_s > r.ideal_time_s);
/// assert!(r.replay_time_s > 0.0);
/// ```
pub fn simulate_with_faults(
    cfg: &SimConfig,
    iters: u64,
    plan: &FaultPlan,
    costs: &CkptCostModel,
) -> FaultSimResult {
    simulate_with_faults_impl(
        cfg,
        iters,
        plan,
        costs,
        CkptIo::Monolithic,
        Recovery::FullRelaunch,
    )
}

/// How checkpoint bytes move in a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CkptIo {
    /// Monolithic snapshot through the shared filesystem.
    Monolithic,
    /// Per-rank shards at NIC bandwidth (the historical sharded pricing,
    /// no per-operation cost).
    Sharded,
    /// Per-rank shards over an explicit store transport.
    ShardedVia(StoreTransport),
}

/// [`simulate_with_faults`], but checkpointing through per-rank shards:
/// snapshot writes and the post-failure restore pay the sharded I/O cost
/// ([`CkptCostModel::sharded_io_s`] — manifest rendezvous plus a parallel
/// per-rank fetch of `1/world` of the state) instead of the monolithic
/// broadcast through the shared filesystem
/// ([`CkptCostModel::monolithic_io_s`]). Mirrors
/// `optimus_cc::run_with_faults_sharded` the way [`simulate_with_faults`]
/// mirrors `run_with_faults`.
///
/// # Example
///
/// ```
/// use opt_ckpt::FaultPlan;
/// use opt_sim::{simulate_with_faults, simulate_with_faults_sharded, CkptCostModel, SimConfig};
///
/// let cfg = SimConfig::paper_gpt_2_5b();
/// let costs = CkptCostModel::paper_cluster();
/// let plan = FaultPlan::new(3, 55, 10);
/// let mono = simulate_with_faults(&cfg, 100, &plan, &costs);
/// let shard = simulate_with_faults_sharded(&cfg, 100, &plan, &costs);
/// // Same failure, same replay — only the checkpoint I/O differs.
/// assert_eq!(mono.replay_time_s, shard.replay_time_s);
/// assert!(shard.snapshot_overhead_s < mono.snapshot_overhead_s);
/// ```
pub fn simulate_with_faults_sharded(
    cfg: &SimConfig,
    iters: u64,
    plan: &FaultPlan,
    costs: &CkptCostModel,
) -> FaultSimResult {
    simulate_with_faults_impl(
        cfg,
        iters,
        plan,
        costs,
        CkptIo::Sharded,
        Recovery::FullRelaunch,
    )
}

/// [`simulate_with_faults_sharded`] with the transport dimension: prices
/// every shard publish/fetch over `transport` —
/// [`StoreTransport::Local`] (in-process memory store) or
/// [`StoreTransport::Tcp`] (the real wire: per-operation connection
/// setup plus NIC-bound framed transfers). This is the cost twin of
/// `optimus_cc::run_with_faults_sharded` (Local) versus
/// `optimus_cc::run_with_faults_sharded_proc` (Tcp).
///
/// # Example
///
/// ```
/// use opt_ckpt::FaultPlan;
/// use opt_sim::{simulate_with_faults_sharded_via, CkptCostModel, SimConfig, StoreTransport};
///
/// let cfg = SimConfig::paper_gpt_2_5b();
/// let costs = CkptCostModel::paper_cluster();
/// let plan = FaultPlan::new(3, 55, 10);
/// let local = simulate_with_faults_sharded_via(&cfg, 100, &plan, &costs, StoreTransport::Local);
/// let tcp = simulate_with_faults_sharded_via(&cfg, 100, &plan, &costs, StoreTransport::Tcp);
/// // Same failure, same replay — the real wire only costs more I/O time.
/// assert_eq!(local.replay_time_s, tcp.replay_time_s);
/// assert!(local.snapshot_overhead_s < tcp.snapshot_overhead_s);
/// ```
pub fn simulate_with_faults_sharded_via(
    cfg: &SimConfig,
    iters: u64,
    plan: &FaultPlan,
    costs: &CkptCostModel,
    transport: StoreTransport,
) -> FaultSimResult {
    simulate_with_faults_impl(
        cfg,
        iters,
        plan,
        costs,
        CkptIo::ShardedVia(transport),
        Recovery::FullRelaunch,
    )
}

/// [`simulate_with_faults_sharded_via`], but recovering through the
/// elastic single-rank **rejoin** protocol instead of a whole-world
/// relaunch — the cost twin of `optimus_cc::run_with_faults_rejoin`.
/// The failure is flagged by the heartbeat detector
/// ([`CkptCostModel::hb_detection_s`], not the NCCL-timeout
/// `detection_s`), survivors pay one quiesce barrier, only the dead rank
/// is relaunched, and the world rolls back with a parallel sharded
/// re-fetch. A failure before the first committed snapshot cannot be
/// healed by rejoin (the real runtime escalates
/// `WorldError::Unrecoverable`) and is priced as a from-scratch full
/// relaunch after the heartbeat verdict.
///
/// # Example
///
/// ```
/// use opt_ckpt::FaultPlan;
/// use opt_sim::{
///     simulate_with_faults_rejoin, simulate_with_faults_sharded_via, CkptCostModel, SimConfig,
///     StoreTransport,
/// };
///
/// let cfg = SimConfig::paper_gpt_2_5b();
/// let costs = CkptCostModel::paper_cluster();
/// let plan = FaultPlan::new(3, 55, 10);
/// let full = simulate_with_faults_sharded_via(&cfg, 100, &plan, &costs, StoreTransport::Tcp);
/// let rejoin = simulate_with_faults_rejoin(&cfg, 100, &plan, &costs, StoreTransport::Tcp);
/// // Same failure, same replay — rejoin only shrinks the downtime.
/// assert_eq!(full.replay_time_s, rejoin.replay_time_s);
/// assert!(rejoin.restart_overhead_s < full.restart_overhead_s);
/// ```
pub fn simulate_with_faults_rejoin(
    cfg: &SimConfig,
    iters: u64,
    plan: &FaultPlan,
    costs: &CkptCostModel,
    transport: StoreTransport,
) -> FaultSimResult {
    simulate_with_faults_impl(
        cfg,
        iters,
        plan,
        costs,
        CkptIo::ShardedVia(transport),
        Recovery::Rejoin,
    )
}

/// How a simulated run gets back to training after its failure.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Recovery {
    /// Tear the whole world down and relaunch every rank (NCCL-timeout
    /// detection, scheduler round-trip).
    FullRelaunch,
    /// Elastic single-rank rejoin: heartbeat detection, survivor quiesce,
    /// one rank relaunched into the live mesh.
    Rejoin,
}

fn simulate_with_faults_impl(
    cfg: &SimConfig,
    iters: u64,
    plan: &FaultPlan,
    costs: &CkptCostModel,
    io: CkptIo,
    recovery: Recovery,
) -> FaultSimResult {
    let t_iter = simulate(cfg).iteration_time_s;
    let bytes = snapshot_bytes(cfg);
    let world = cfg.tp * cfg.dp * cfg.pp;
    // Writes publish in parallel with no rendezvous; restores pay the
    // manifest round-trip before their fetch.
    let (t_snap, t_read) = match io {
        CkptIo::Monolithic => (costs.monolithic_io_s(bytes), costs.monolithic_io_s(bytes)),
        CkptIo::Sharded => (
            costs.sharded_publish_s(bytes, world),
            costs.sharded_io_s(bytes, world),
        ),
        CkptIo::ShardedVia(t) => (
            costs.sharded_publish_s_via(bytes, world, t),
            costs.sharded_io_s_via(bytes, world, t),
        ),
    };
    let ideal_time_s = t_iter * iters as f64;

    let mut now = 0.0;
    let mut snapshot_overhead_s = 0.0;
    let mut restart_overhead_s = 0.0;
    let mut replay_time_s = 0.0;
    let mut events = Vec::new();
    let mut completed: u64 = 0;
    let mut failed = false;

    while completed < iters {
        now += t_iter;
        completed += 1;
        if plan.snapshot_due(completed) && completed < iters {
            now += t_snap;
            snapshot_overhead_s += t_snap;
            events.push(FaultEvent::SnapshotWrite {
                iter: completed,
                at_s: now,
            });
        }
        if !failed && completed == plan.kill_at_iter {
            failed = true;
            events.push(FaultEvent::Failure {
                rank: plan.kill_rank,
                iter: completed,
                at_s: now,
            });
            let from_iter = plan.last_snapshot_before(completed);
            let restart = match (recovery, from_iter) {
                // Detection + relaunch always; snapshot read only if one
                // exists.
                (Recovery::FullRelaunch, Some(_)) => costs.detection_s + costs.relaunch_s + t_read,
                (Recovery::FullRelaunch, None) => costs.detection_s + costs.relaunch_s,
                // Heartbeat verdict, quiesce, one rank relaunched, world
                // rolls back with a parallel shard re-fetch.
                (Recovery::Rejoin, Some(_)) => {
                    costs.hb_detection_s + costs.quiesce_s + costs.rank_relaunch_s + t_read
                }
                // Nothing committed to splice a replacement against:
                // rejoin escalates (`WorldError::Unrecoverable`) and the
                // job falls back to a from-scratch full relaunch — only
                // the detection was cheaper.
                (Recovery::Rejoin, None) => costs.hb_detection_s + costs.relaunch_s,
            };
            now += restart;
            restart_overhead_s += restart;
            events.push(FaultEvent::Restore {
                from_iter,
                at_s: now,
            });
            let resume_at = from_iter.unwrap_or(0);
            replay_time_s += (completed - resume_at) as f64 * t_iter;
            completed = resume_at;
        }
    }

    FaultSimResult {
        ideal_time_s,
        total_time_s: now,
        snapshot_overhead_s,
        restart_overhead_s,
        replay_time_s,
        snapshot_bytes: bytes,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (SimConfig, CkptCostModel) {
        (SimConfig::paper_gpt_2_5b(), CkptCostModel::paper_cluster())
    }

    #[test]
    fn accounting_adds_up() {
        let (cfg, costs) = base();
        let r = simulate_with_faults(&cfg, 60, &FaultPlan::new(2, 45, 10), &costs);
        let sum = r.ideal_time_s + r.snapshot_overhead_s + r.restart_overhead_s + r.replay_time_s;
        assert!(
            (r.total_time_s - sum).abs() < 1e-6 * r.total_time_s,
            "total {} != parts {}",
            r.total_time_s,
            sum
        );
        assert!(r.overhead_fraction() > 0.0);
    }

    #[test]
    fn no_failure_means_only_snapshot_overhead() {
        let (cfg, costs) = base();
        let r = simulate_with_faults(&cfg, 20, &FaultPlan::new(0, 1000, 5), &costs);
        assert_eq!(r.restart_overhead_s, 0.0);
        assert_eq!(r.replay_time_s, 0.0);
        // Snapshots after iters 5, 10, 15 (20 is the final iteration).
        assert!(r.snapshot_overhead_s > 0.0);
        assert_eq!(
            r.events
                .iter()
                .filter(|e| matches!(e, FaultEvent::SnapshotWrite { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn rarer_snapshots_trade_write_time_for_replay_time() {
        let (cfg, costs) = base();
        let frequent = simulate_with_faults(&cfg, 100, &FaultPlan::new(1, 99, 5), &costs);
        let rare = simulate_with_faults(&cfg, 100, &FaultPlan::new(1, 99, 50), &costs);
        assert!(frequent.snapshot_overhead_s > rare.snapshot_overhead_s);
        assert!(frequent.replay_time_s < rare.replay_time_s);
    }

    #[test]
    fn failure_without_snapshot_replays_everything() {
        let (cfg, costs) = base();
        let r = simulate_with_faults(&cfg, 10, &FaultPlan::new(0, 4, 0), &costs);
        assert!((r.replay_time_s - 4.0 * r.ideal_time_s / 10.0).abs() < 1e-9);
        assert!(r.events.iter().any(|e| matches!(
            e,
            FaultEvent::Restore {
                from_iter: None,
                ..
            }
        )));
    }

    #[test]
    fn events_are_time_ordered() {
        let (cfg, costs) = base();
        let r = simulate_with_faults(&cfg, 40, &FaultPlan::new(0, 33, 8), &costs);
        let times: Vec<f64> = r
            .events
            .iter()
            .map(|e| match e {
                FaultEvent::SnapshotWrite { at_s, .. }
                | FaultEvent::Failure { at_s, .. }
                | FaultEvent::Restore { at_s, .. } => *at_s,
            })
            .collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "events out of order: {times:?}");
        }
    }

    #[test]
    fn sharded_io_beats_monolithic_broadcast_at_scale() {
        let (cfg, costs) = base();
        let bytes = snapshot_bytes(&cfg);
        let world = cfg.tp * cfg.dp * cfg.pp;
        assert!(world > 1);
        // Per-shard fetch moves 1/world of the bytes over a faster
        // per-rank pipe; even with the rendezvous round-trip it wins on a
        // tens-of-GB snapshot.
        assert!(costs.sharded_io_s(bytes, world) < costs.monolithic_io_s(bytes));
        // Writes skip the rendezvous a restore pays.
        let gap = costs.sharded_io_s(bytes, world) - costs.sharded_publish_s(bytes, world);
        assert!((gap - costs.rendezvous_s).abs() < 1e-9, "gap {gap}");
        // Degenerate world of one still pays the rendezvous.
        assert!(costs.sharded_io_s(bytes, 1) >= costs.rendezvous_s);
        assert!(costs.sharded_io_s(0.0, 0) == costs.rendezvous_s);
    }

    #[test]
    fn sharded_fault_sim_accounts_and_wins_on_io() {
        let (cfg, costs) = base();
        let plan = FaultPlan::new(2, 45, 10);
        let mono = simulate_with_faults(&cfg, 60, &plan, &costs);
        let shard = simulate_with_faults_sharded(&cfg, 60, &plan, &costs);
        // Identical failure story: same events, same replayed work.
        assert_eq!(mono.events.len(), shard.events.len());
        assert_eq!(mono.replay_time_s, shard.replay_time_s);
        assert_eq!(mono.ideal_time_s, shard.ideal_time_s);
        // Only checkpoint I/O differs, in the sharded path's favor.
        assert!(shard.snapshot_overhead_s < mono.snapshot_overhead_s);
        assert!(shard.restart_overhead_s < mono.restart_overhead_s);
        assert!(shard.total_time_s < mono.total_time_s);
        // And the accounting still adds up.
        let sum = shard.ideal_time_s
            + shard.snapshot_overhead_s
            + shard.restart_overhead_s
            + shard.replay_time_s;
        assert!(
            (shard.total_time_s - sum).abs() < 1e-6 * shard.total_time_s,
            "total {} != parts {}",
            shard.total_time_s,
            sum
        );
    }

    #[test]
    fn transport_dimension_prices_the_real_wire() {
        let (cfg, costs) = base();
        let bytes = snapshot_bytes(&cfg);
        let world = cfg.tp * cfg.dp * cfg.pp;
        // Local shard ops are a memory copy: no per-op cost, faster pipe.
        assert_eq!(costs.store_op_s(StoreTransport::Local), 0.0);
        assert!(costs.store_bw(StoreTransport::Local) > costs.store_bw(StoreTransport::Tcp));
        let local = costs.sharded_publish_s_via(bytes, world, StoreTransport::Local);
        let tcp = costs.sharded_publish_s_via(bytes, world, StoreTransport::Tcp);
        assert!(local < tcp, "local {local} !< tcp {tcp}");
        // The TCP publish is the historical NIC pricing plus one
        // connection setup.
        let legacy = costs.sharded_publish_s(bytes, world);
        assert!((tcp - legacy - costs.tcp_connect_s).abs() < 1e-12);
        // A restore pays the rendezvous plus one extra store op (the
        // manifest fetch) on top of the shard fetch.
        let io_tcp = costs.sharded_io_s_via(bytes, world, StoreTransport::Tcp);
        assert!((io_tcp - (costs.rendezvous_s + costs.tcp_connect_s + tcp)).abs() < 1e-12);
        // Even over the real wire, sharded restore beats the monolithic
        // broadcast at paper scale.
        assert!(io_tcp < costs.monolithic_io_s(bytes));
    }

    #[test]
    fn sharded_fault_sim_transport_dimension_only_moves_io_time() {
        let (cfg, costs) = base();
        let plan = FaultPlan::new(2, 45, 10);
        let local =
            simulate_with_faults_sharded_via(&cfg, 60, &plan, &costs, StoreTransport::Local);
        let tcp = simulate_with_faults_sharded_via(&cfg, 60, &plan, &costs, StoreTransport::Tcp);
        // The failure story is transport-independent.
        assert_eq!(local.events.len(), tcp.events.len());
        assert_eq!(local.replay_time_s, tcp.replay_time_s);
        assert_eq!(local.ideal_time_s, tcp.ideal_time_s);
        // Only checkpoint I/O differs, in the local store's favor.
        assert!(local.snapshot_overhead_s < tcp.snapshot_overhead_s);
        assert!(local.restart_overhead_s < tcp.restart_overhead_s);
        assert!(local.total_time_s < tcp.total_time_s);
        // And both still account exactly.
        for r in [&local, &tcp] {
            let sum =
                r.ideal_time_s + r.snapshot_overhead_s + r.restart_overhead_s + r.replay_time_s;
            assert!((r.total_time_s - sum).abs() < 1e-6 * r.total_time_s);
        }
    }

    #[test]
    fn rejoin_recovery_shrinks_downtime_but_not_replay() {
        let (cfg, costs) = base();
        let plan = FaultPlan::new(2, 45, 10);
        let full = simulate_with_faults_sharded_via(&cfg, 60, &plan, &costs, StoreTransport::Tcp);
        let rejoin = simulate_with_faults_rejoin(&cfg, 60, &plan, &costs, StoreTransport::Tcp);
        // Identical failure story and replayed work — rejoin is purely a
        // downtime optimization.
        assert_eq!(full.events.len(), rejoin.events.len());
        assert_eq!(full.replay_time_s, rejoin.replay_time_s);
        assert_eq!(full.snapshot_overhead_s, rejoin.snapshot_overhead_s);
        assert!(rejoin.restart_overhead_s < full.restart_overhead_s);
        // The gap is exactly the detection + relaunch savings.
        let saved = (costs.detection_s - costs.hb_detection_s)
            + (costs.relaunch_s - costs.quiesce_s - costs.rank_relaunch_s);
        assert!(
            (full.restart_overhead_s - rejoin.restart_overhead_s - saved).abs() < 1e-9,
            "saved {saved}"
        );
        // Accounting still closes.
        let sum = rejoin.ideal_time_s
            + rejoin.snapshot_overhead_s
            + rejoin.restart_overhead_s
            + rejoin.replay_time_s;
        assert!((rejoin.total_time_s - sum).abs() < 1e-6 * rejoin.total_time_s);
        // The closed-form downtime matches the simulated restart.
        let bytes = snapshot_bytes(&cfg);
        let world = cfg.tp * cfg.dp * cfg.pp;
        assert!(
            (rejoin.restart_overhead_s
                - costs.rejoin_downtime_s(bytes, world, StoreTransport::Tcp))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn rejoin_before_first_snapshot_degrades_to_full_relaunch() {
        let (cfg, costs) = base();
        // Killed at iteration 4 with the first snapshot due at 10: there
        // is nothing to splice a replacement against.
        let plan = FaultPlan::new(0, 4, 10);
        let r = simulate_with_faults_rejoin(&cfg, 20, &plan, &costs, StoreTransport::Tcp);
        assert!((r.restart_overhead_s - (costs.hb_detection_s + costs.relaunch_s)).abs() < 1e-9);
        assert!(r.events.iter().any(|e| matches!(
            e,
            FaultEvent::Restore {
                from_iter: None,
                ..
            }
        )));
    }

    #[test]
    fn snapshot_bytes_scale_with_model() {
        let small = snapshot_bytes(&SimConfig::paper_gpt_2_5b());
        let large = snapshot_bytes(&SimConfig::paper_gpt_8_3b());
        assert!(large > 2.0 * small);
        // GPT-2.5B at 12 bytes/param is in the tens of GB.
        assert!(small > 1e10 && small < 1e11, "snapshot {small:.3e} B");
    }
}
