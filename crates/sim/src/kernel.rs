//! Compression/decompression kernel cost model, calibrated to Fig. 15.

use serde::{Deserialize, Serialize};

/// Cost model for PowerSGD compression kernels on an A100-class GPU.
///
/// Compression of an `n x m` gradient at rank `r` performs two `n x m x r`
/// GEMMs (`P = M Q`, `Q = M^T P`) plus Gram–Schmidt orthogonalization of
/// the `n x r` factor. The paper's §9.6 reports that orthogonalization
/// dominates (~80 % of compression time) and that throughput *decreases*
/// with rank while *increasing* with model size — both fall out of this
/// two-term model.
///
/// Constants are calibrated to the paper's Fig. 15 anchor: GPT-8.3B,
/// CB rank 16 → compression ≈ 98 GB/s (787 Gb/s), decompression
/// ≈ 8.3 TB/s (68.2 Tb/s) of dense-equivalent bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// Effective GEMM throughput during compression, FLOP/s.
    pub gemm_flops: f64,
    /// Per-column cost of Gram–Schmidt (the loop is kernel-launch bound:
    /// one projection + normalization round per column), seconds.
    pub orth_per_column_s: f64,
    /// Memory-bound FLOP rate of the orthogonalization arithmetic, FLOP/s.
    pub orth_flops: f64,
    /// Effective GEMM throughput during decompression (`P Q^T`), FLOP/s.
    pub decomp_flops: f64,
    /// Fixed kernel-launch overhead per compression call, seconds.
    pub launch_overhead_s: f64,
}

impl KernelModel {
    /// The Fig. 15-calibrated A100 model.
    pub fn a100() -> Self {
        Self {
            gemm_flops: 1.6e13,
            orth_per_column_s: 10e-6,
            orth_flops: 2e11,
            decomp_flops: 1.3e14,
            launch_overhead_s: 10e-6,
        }
    }

    /// Time of the Gram–Schmidt orthogonalization of the `n x r` left
    /// factor: a launch-bound per-column loop plus memory-bound FLOPs.
    pub fn orth_time(&self, n: usize, r: usize) -> f64 {
        r as f64 * self.orth_per_column_s + 2.0 * n as f64 * (r * r) as f64 / self.orth_flops
    }

    /// Time to compress an `n x m` matrix at rank `r`, seconds.
    pub fn compress_time(&self, n: usize, m: usize, r: usize) -> f64 {
        let gemm = 4.0 * (n as f64) * (m as f64) * (r as f64) / self.gemm_flops;
        self.launch_overhead_s + gemm + self.orth_time(n, r)
    }

    /// Time to decompress (`P Q^T`) an `n x m` matrix at rank `r`, seconds.
    pub fn decompress_time(&self, n: usize, m: usize, r: usize) -> f64 {
        let (n, m, r) = (n as f64, m as f64, r as f64);
        self.launch_overhead_s + 2.0 * n * m * r / self.decomp_flops
    }

    /// Dense-equivalent compression throughput in bytes/s for an `n x m`
    /// fp16 matrix at rank `r` — the metric of Fig. 15.
    pub fn compress_throughput(&self, n: usize, m: usize, r: usize) -> f64 {
        (n * m * 2) as f64 / self.compress_time(n, m, r)
    }

    /// Dense-equivalent decompression throughput in bytes/s.
    pub fn decompress_throughput(&self, n: usize, m: usize, r: usize) -> f64 {
        (n * m * 2) as f64 / self.decompress_time(n, m, r)
    }

    /// Compression time for one pipeline stage's DP gradients: `layers`
    /// transformer layers, each with weight matrices `(h,3h)`, `(h,h)`,
    /// `(h,4h)`, `(4h,h)`, compressed independently at rank `r`.
    pub fn dp_compress_time(&self, layers: usize, hidden: usize, r: usize) -> f64 {
        let shapes = [
            (hidden, 3 * hidden),
            (hidden, hidden),
            (hidden, 4 * hidden),
            (4 * hidden, hidden),
        ];
        let per_layer: f64 = shapes
            .iter()
            .map(|&(n, m)| self.compress_time(n, m, r))
            .sum();
        layers as f64 * per_layer
    }

    /// Decompression time counterpart of [`KernelModel::dp_compress_time`].
    pub fn dp_decompress_time(&self, layers: usize, hidden: usize, r: usize) -> f64 {
        let shapes = [
            (hidden, 3 * hidden),
            (hidden, hidden),
            (hidden, 4 * hidden),
            (4 * hidden, hidden),
        ];
        let per_layer: f64 = shapes
            .iter()
            .map(|&(n, m)| self.decompress_time(n, m, r))
            .sum();
        layers as f64 * per_layer
    }
}

impl Default for KernelModel {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// GPT-8.3B activation matrix under the paper's setting: micro-batch 8
    /// x seq 1024 rows, hidden 3072 columns.
    const N: usize = 8 * 1024;
    const M: usize = 3072;

    #[test]
    fn fig15_compression_anchor() {
        // Paper: 786.96 Gb/s = 98.37 GB/s at rank 16 on GPT-8.3B.
        let k = KernelModel::a100();
        let tput = k.compress_throughput(N, M, 16);
        assert!(
            tput > 50e9 && tput < 200e9,
            "compression throughput {tput:.3e} out of anchor band"
        );
    }

    #[test]
    fn fig15_decompression_anchor() {
        // Paper: 68.2 Tb/s = 8.52 TB/s at rank 16 on GPT-8.3B.
        let k = KernelModel::a100();
        let tput = k.decompress_throughput(N, M, 16);
        assert!(
            tput > 2e12 && tput < 20e12,
            "decompression throughput {tput:.3e} out of anchor band"
        );
    }

    #[test]
    fn throughput_decreases_with_rank() {
        // Paper §9.6: "the throughput decreases with higher CB ranks".
        let k = KernelModel::a100();
        let mut prev = f64::INFINITY;
        for r in [4usize, 16, 64, 256] {
            let t = k.compress_throughput(N, M, r);
            assert!(t < prev, "rank {r}: {t} !< {prev}");
            prev = t;
        }
    }

    #[test]
    fn throughput_increases_with_model_size() {
        // Paper §9.6: larger models amortize setup -> higher throughput.
        let k = KernelModel::a100();
        let small = k.compress_throughput(N, 1920, 16); // GPT-2.5B hidden
        let large = k.compress_throughput(N, 12_288, 16); // GPT-175B hidden
        assert!(large > small);
    }

    #[test]
    fn compression_beats_interconnect() {
        // The premise of the whole paper: compressing is far faster than
        // sending the saved bytes (200 Gb/s = 25 GB/s line rate).
        let k = KernelModel::a100();
        assert!(k.compress_throughput(N, M, 16) > 25e9);
        assert!(k.decompress_throughput(N, M, 16) > 25e9);
    }

    #[test]
    fn orthogonalization_dominates_at_paper_rank() {
        // §9.6: orthogonalization is ~80 % of compression time. Accept a
        // broad band around it.
        let k = KernelModel::a100();
        let total = k.compress_time(N, M, 16) - k.launch_overhead_s;
        let frac = k.orth_time(N, 16) / total;
        assert!(frac > 0.5 && frac < 0.95, "orth fraction {frac}");
    }

    #[test]
    fn rank512_dp_compression_is_slow() {
        // Fig. 13: rank 512 makes DP compression itself a bottleneck.
        let k = KernelModel::a100();
        let layers = 13; // GPT-2.5B stage at PP=4
        let t128 = k.dp_compress_time(layers, 1920, 128);
        let t512 = k.dp_compress_time(layers, 1920, 512);
        assert!(t512 > 5.0 * t128, "t512 {t512} vs t128 {t128}");
    }
}
