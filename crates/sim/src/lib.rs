//! `opt-sim` — discrete-event performance simulator of 3D-parallel training.
//!
//! This crate replaces the paper's 128×A100 cluster. It simulates one
//! training iteration of a Megatron-style 3D-parallel job at event
//! granularity:
//!
//! * per-device compute ops following the 1F1B schedule from
//!   `opt-schedule` (forward `t`, backward `2t`, as in the paper's Fig. 4),
//! * point-to-point inter-stage transfers over the inter-node fabric,
//!   optionally compressed (with compression/decompression kernel time
//!   from the calibrated [`KernelModel`]),
//! * per-stage data-parallel ring all-reduces that start as soon as the
//!   stage's last backward finishes (the structural fact selective stage
//!   compression exploits, §7),
//! * embedding synchronization — separate (EMB DP + 2-way sync) or fused
//!   (single 2D-way all-reduce, §6),
//! * scripted worker failures with checkpoint/restart cost accounting
//!   ([`simulate_with_faults`]): snapshot-write overhead, failure
//!   detection, relaunch, snapshot read, and lost-work replay, driven by
//!   the same `opt_ckpt::FaultPlan` the numerical trainer executes.
//!
//! Communication volumes are derived from the *paper-scale* model configs
//! (`opt-model::GptConfig`) and the paper's cluster parameters
//! (`opt-net::Topology`), so "who wins by what factor" is governed by the
//! same volume/bandwidth ratios as on the real cluster.
//!
//! The CPI-stack-style breakdown of §3/Fig. 10 is reproduced by the same
//! method the paper uses: re-running the simulation with one communication
//! class disabled and reporting the difference ([`breakdown`]).
//!
//! # Example
//!
//! ```
//! use opt_sim::{simulate, CompressionPlan, SimConfig};
//!
//! let base = SimConfig::paper_gpt_2_5b();
//! let opt = base.clone().with_plan(CompressionPlan::cb_fe_sc());
//! let t_base = simulate(&base).iteration_time_s;
//! let t_opt = simulate(&opt).iteration_time_s;
//! assert!(t_opt < t_base);
//! ```

mod autotune;
mod breakdown;
mod config;
mod engine;
mod fault;
mod kernel;

pub use autotune::{auto_tune, error_pressure, sweep, TunePoint};
pub use breakdown::{breakdown, breakdown_with_result, Breakdown};
pub use config::{CbPlan, CompressionPlan, ScPlan, SimConfig};
pub use engine::{simulate, SimResult, TraceEvent, TraceKind};
pub use fault::{
    simulate_with_faults, simulate_with_faults_rejoin, simulate_with_faults_sharded,
    simulate_with_faults_sharded_via, snapshot_bytes, CkptCostModel, FaultEvent, FaultSimResult,
    StoreTransport,
};
pub use kernel::KernelModel;
