//! Property-based tests on simulator invariants.

use opt_model::GptConfig;
use opt_sim::{simulate, CbPlan, CompressionPlan, ScPlan, SimConfig};
use proptest::prelude::*;

fn job(pp: usize, n_micro: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(GptConfig::gpt_9_2b()); // 80 layers
    cfg.pp = pp;
    cfg.n_micro = n_micro;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compression_never_slows_beyond_epsilon(pp in 1usize..9, n_micro in 1usize..24) {
        // CB and FE are pure wins in the simulator (kernel time << saved
        // transfer time at paper bandwidths).
        let cfg = job(pp, n_micro);
        let base = simulate(&cfg).iteration_time_s;
        let cb = simulate(&cfg.clone().with_plan(CompressionPlan::cb())).iteration_time_s;
        let fe = simulate(&cfg.clone().with_plan(CompressionPlan::cb_fe())).iteration_time_s;
        prop_assert!(cb <= base * 1.0001, "CB slower: {cb} vs {base}");
        prop_assert!(fe <= cb * 1.0001, "FE slower: {fe} vs {cb}");
    }

    #[test]
    fn iteration_time_monotone_in_micro_batches(pp in 1usize..6, m in 1usize..16) {
        let t1 = simulate(&job(pp, m)).iteration_time_s;
        let t2 = simulate(&job(pp, m + 1)).iteration_time_s;
        prop_assert!(t2 > t1, "more micro-batches must take longer");
    }

    #[test]
    fn backward_done_is_decreasing_in_stage(pp in 2usize..9, m in 2usize..20) {
        let r = simulate(&job(pp, m));
        for w in r.backward_done_s.windows(2) {
            prop_assert!(w[0] >= w[1], "stage finish order violated: {:?}", r.backward_done_s);
        }
    }

    #[test]
    fn interstage_bytes_scale_with_boundaries(pp in 2usize..9, m in 1usize..16) {
        // Baseline: (pp-1) boundaries x m micros x 2 directions x volume.
        let cfg = job(pp, m);
        let r = simulate(&cfg);
        let expect = (pp - 1) as f64 * m as f64 * 2.0 * cfg.act_volume_bytes();
        prop_assert!((r.interstage_bytes - expect).abs() < 1.0);
    }

    #[test]
    fn naive_cb_never_sends_more_than_epilogue_cb(pp in 2usize..9, m in 2usize..16, rank in 1usize..64) {
        let cfg = job(pp, m);
        let epi = simulate(&cfg.clone().with_plan(CompressionPlan {
            compressed_backprop: Some(CbPlan { rank, epilogue_only: true }),
            ..CompressionPlan::baseline()
        }));
        let all = simulate(&cfg.clone().with_plan(CompressionPlan {
            compressed_backprop: Some(CbPlan { rank, epilogue_only: false }),
            ..CompressionPlan::baseline()
        }));
        prop_assert!(all.interstage_bytes <= epi.interstage_bytes + 1.0);
    }

    #[test]
    fn sc_bytes_monotone_in_fraction(frac_pct in 0usize..5) {
        let cfg = job(4, 16);
        let f = |pct: usize| {
            let fraction = pct as f64 * 0.25;
            let plan = CompressionPlan {
                selective_stage: (fraction > 0.0)
                    .then_some(ScPlan { fraction, rank: 128 }),
                ..CompressionPlan::baseline()
            };
            simulate(&cfg.clone().with_plan(plan)).dp_bytes
        };
        if frac_pct < 4 {
            prop_assert!(f(frac_pct + 1) <= f(frac_pct) + 1.0);
        }
    }

    #[test]
    fn trace_events_never_overlap_per_device(pp in 1usize..6, m in 1usize..12) {
        let r = simulate(&job(pp, m));
        for s in 0..pp {
            let mut evs: Vec<_> = r
                .trace
                .iter()
                .filter(|e| {
                    e.stage == s
                        && matches!(
                            e.kind,
                            opt_sim::TraceKind::Forward | opt_sim::TraceKind::Backward
                        )
                })
                .collect();
            evs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in evs.windows(2) {
                prop_assert!(w[1].start >= w[0].end - 1e-12);
            }
        }
    }
}
