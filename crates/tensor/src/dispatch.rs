//! Runtime kernel-architecture dispatch.
//!
//! The GEMM and sparse kernels come in one implementation per
//! architecture: an AVX2+FMA micro-kernel on x86_64, a NEON micro-kernel
//! on aarch64, and a portable scalar fallback. Which one runs is resolved
//! **once** per process, from the first probe of [`kernel_arch`]:
//!
//! 1. `OPT_KERNEL_ARCH=scalar|avx2|neon` forces a path (benchmarking the
//!    fallback on a SIMD box, CI's forced-scalar leg). Requesting a path
//!    the host cannot execute panics instead of silently falling back —
//!    a benchmark or test run under an override must never measure a
//!    different kernel than it claims. `detect` (or an empty value) is
//!    the same as leaving the variable unset.
//! 2. Otherwise the host is probed (`is_x86_feature_detected!("avx2")` +
//!    `"fma"` on x86_64; NEON is baseline on aarch64).
//! 3. Anything else falls back to [`KernelArch::Scalar`].
//!
//! Every path produces **bit-identical results**: the kernel contract is a
//! fused-multiply-add accumulation chain per output element (and a fixed
//! 8-lane split for dot reductions — see `simd.rs`), which the scalar
//! fallback emulates with [`f32::mul_add`]. `tests/kernel_equivalence.rs`
//! enforces the contract across every path the host can run.
//!
//! The module also keeps per-`{arch, dense/sparse}` invocation counters so
//! a trace export can show which kernel paths a run actually exercised
//! (see [`kernel_path_counts`]).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which micro-kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArch {
    /// Portable `f32::mul_add` loops — the universal fallback. Correctly
    /// rounded fused multiply-add is unique, so this produces the same
    /// bits as the hardware-FMA paths (at libcall speed on hosts without
    /// an FMA unit).
    Scalar,
    /// x86_64 AVX2 + FMA (`_mm256_fmadd_ps`) micro-kernels.
    Avx2,
    /// aarch64 NEON (`vfmaq_f32`) micro-kernels.
    Neon,
}

impl KernelArch {
    /// Stable lowercase name, as accepted by `OPT_KERNEL_ARCH`.
    pub fn name(self) -> &'static str {
        match self {
            KernelArch::Scalar => "scalar",
            KernelArch::Avx2 => "avx2",
            KernelArch::Neon => "neon",
        }
    }

    fn code(self) -> u8 {
        match self {
            KernelArch::Scalar => 1,
            KernelArch::Avx2 => 2,
            KernelArch::Neon => 3,
        }
    }

    fn from_code(code: u8) -> Option<KernelArch> {
        match code {
            1 => Some(KernelArch::Scalar),
            2 => Some(KernelArch::Avx2),
            3 => Some(KernelArch::Neon),
            _ => None,
        }
    }

    fn index(self) -> usize {
        self.code() as usize - 1
    }
}

/// 0 means "not yet resolved".
static KERNEL_ARCH: AtomicU8 = AtomicU8::new(0);

/// Whether the host can execute a given path's instructions.
pub fn arch_available(arch: KernelArch) -> bool {
    match arch {
        KernelArch::Scalar => true,
        KernelArch::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        KernelArch::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// Every path the host can run, scalar first, detected SIMD path last.
/// The cross-arch equivalence tests iterate exactly this list, which is
/// what makes the CI `kernel-equivalence` step meaningful: a path the
/// dispatcher could pick is always a path the oracle ran against.
pub fn available_arches() -> Vec<KernelArch> {
    let mut arches = vec![KernelArch::Scalar];
    for arch in [KernelArch::Avx2, KernelArch::Neon] {
        if arch_available(arch) {
            arches.push(arch);
        }
    }
    arches
}

/// The best path the host supports (ignoring any override).
pub fn detected_arch() -> KernelArch {
    if arch_available(KernelArch::Avx2) {
        KernelArch::Avx2
    } else if arch_available(KernelArch::Neon) {
        KernelArch::Neon
    } else {
        KernelArch::Scalar
    }
}

fn arch_from_env() -> KernelArch {
    match std::env::var("OPT_KERNEL_ARCH") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            let requested = match v.as_str() {
                "" | "detect" => return detected_arch(),
                "scalar" => KernelArch::Scalar,
                "avx2" => KernelArch::Avx2,
                "neon" => KernelArch::Neon,
                other => panic!("OPT_KERNEL_ARCH={other:?} is not one of scalar|avx2|neon|detect"),
            };
            assert!(
                arch_available(requested),
                "OPT_KERNEL_ARCH={} requested but this host cannot execute that path",
                requested.name()
            );
            requested
        }
        Err(_) => detected_arch(),
    }
}

/// The kernel path this process dispatches to, resolved once from
/// `OPT_KERNEL_ARCH` (else hardware detection) on first use.
pub fn kernel_arch() -> KernelArch {
    match KernelArch::from_code(KERNEL_ARCH.load(Ordering::Relaxed)) {
        Some(arch) => arch,
        None => {
            let arch = arch_from_env();
            KERNEL_ARCH.store(arch.code(), Ordering::Relaxed);
            arch
        }
    }
}

/// Overrides the kernel path at runtime (equivalence tests, benchmark
/// variant rows). Because every path is bit-identical, this only ever
/// changes speed.
///
/// # Panics
///
/// Panics if the host cannot execute `arch` — an override must never
/// silently measure a different kernel than it claims.
pub fn set_kernel_arch(arch: KernelArch) {
    assert!(
        arch_available(arch),
        "set_kernel_arch({}): this host cannot execute that path",
        arch.name()
    );
    KERNEL_ARCH.store(arch.code(), Ordering::Relaxed);
}

/// `"<target>/<path>"`, e.g. `"x86_64/avx2"` — the string benchmark
/// provenance records as the machine's kernel arch.
pub fn kernel_arch_name() -> String {
    format!("{}/{}", std::env::consts::ARCH, kernel_arch().name())
}

// ---------------------------------------------------------------------------
// Kernel-path invocation counters
// ---------------------------------------------------------------------------

/// Process-wide invocation counters, one per `{arch, dense|sparse}` pair
/// (indexed `[arch][kind]`). "Dense" counts GEMM driver entries under the
/// selected arch (including the small-problem scalar shortcut — the
/// counter records the *dispatch choice*, not the loop nest that won);
/// "sparse" counts SpMM / sparse-AXPY kernel entries.
static PATH_COUNTS: [[AtomicU64; 2]; 3] = [
    [AtomicU64::new(0), AtomicU64::new(0)],
    [AtomicU64::new(0), AtomicU64::new(0)],
    [AtomicU64::new(0), AtomicU64::new(0)],
];

pub(crate) fn note_dense_kernel(arch: KernelArch) {
    PATH_COUNTS[arch.index()][0].fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_sparse_kernel(arch: KernelArch) {
    PATH_COUNTS[arch.index()][1].fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the per-path invocation counters:
/// `(arch name, "dense"|"sparse", invocations)` for all six pairs, in a
/// fixed order. Counters are process-global and monotonic; consumers
/// (the Chrome-trace exporter, `trace_report`) typically show only the
/// nonzero entries.
pub fn kernel_path_counts() -> [(&'static str, &'static str, u64); 6] {
    let arches = [KernelArch::Scalar, KernelArch::Avx2, KernelArch::Neon];
    let mut out = [("", "", 0u64); 6];
    for (i, arch) in arches.iter().enumerate() {
        for (j, path) in ["dense", "sparse"].iter().enumerate() {
            out[i * 2 + j] = (
                arch.name(),
                path,
                PATH_COUNTS[arch.index()][j].load(Ordering::Relaxed),
            );
        }
    }
    out
}

/// Resets the invocation counters to zero (tests).
pub fn reset_kernel_path_counts() {
    for per_arch in &PATH_COUNTS {
        for c in per_arch {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(arch_available(KernelArch::Scalar));
        let arches = available_arches();
        assert_eq!(arches[0], KernelArch::Scalar);
        assert!(arches.contains(&detected_arch()));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelArch::Scalar.name(), "scalar");
        assert_eq!(KernelArch::Avx2.name(), "avx2");
        assert_eq!(KernelArch::Neon.name(), "neon");
        assert!(kernel_arch_name().ends_with(kernel_arch().name()));
    }

    #[test]
    fn arch_codes_roundtrip() {
        for arch in [KernelArch::Scalar, KernelArch::Avx2, KernelArch::Neon] {
            assert_eq!(KernelArch::from_code(arch.code()), Some(arch));
        }
        assert_eq!(KernelArch::from_code(0), None);
        assert_eq!(KernelArch::from_code(9), None);
    }

    #[test]
    fn path_counts_enumerate_all_pairs() {
        let counts = kernel_path_counts();
        assert_eq!(counts.len(), 6);
        assert_eq!(counts[0].0, "scalar");
        assert_eq!(counts[0].1, "dense");
        assert_eq!(counts[5].0, "neon");
        assert_eq!(counts[5].1, "sparse");
    }
}
