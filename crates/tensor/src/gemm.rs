//! Cache-blocked, register-tiled GEMM over a shared packed micro-kernel.
//!
//! All three matrix products ([`crate::Matrix::matmul`],
//! [`crate::Matrix::t_matmul`], [`crate::Matrix::matmul_t`]) funnel into
//! one driver with three shapes of inner loop:
//!
//! * the **packed path** for general shapes: B is packed into `NR`-wide
//!   column panels once, A is either streamed directly (row-major
//!   operands) or packed per `k`-chunk (transposed operands), and an
//!   `MR x NR` register tile of `f32` accumulators walks the shared `k`
//!   dimension in L1-sized chunks;
//! * the **skinny path** for outputs with at most a few rows (the
//!   PowerSGD factor products after the swap below): the tiny A operand is
//!   packed whole, B is read directly as contiguous row slivers (packing a
//!   64 MB gradient to multiply it by a rank-8 factor would dominate), and
//!   workers own disjoint column-panel ranges;
//! * a **plain loop nest** below a FLOP threshold where packing overhead
//!   would dominate.
//!
//! Tall-skinny `A^T B` (PowerSGD `Q = G^T P`) is rewritten as `(B^T A)^T`
//! so every memory walk is over contiguous rows.
//!
//! The micro-kernels themselves are architecture-dispatched (see
//! [`crate::dispatch`]): AVX2+FMA on x86_64, NEON on aarch64, and a
//! portable [`f32::mul_add`] fallback, all implementing the same
//! contract (see `simd.rs`).
//!
//! # Determinism contract
//!
//! Every output element is **one fused-multiply-add chain** over
//! ascending `k`: `acc = fma(a_k, b_k, acc)`. Correctly rounded FMA is
//! unique, so the hardware `vfmadd`/`vfma` paths and the scalar
//! `f32::mul_add` fallback produce identical bits on every architecture:
//!
//! * the SIMD kernels vectorize across output *columns* (broadcast `a`,
//!   vector `b`), which interleaves different elements' chains but never
//!   reassociates any one chain;
//! * register tiling likewise only interleaves *different* elements'
//!   chains;
//! * `k`-chunking spills the accumulator to the output between chunks and
//!   reloads it, continuing the same chain (`fma(a2,b2, fma(a1,b1, 0))`
//!   is the same sequence whether or not a spill happens in the middle);
//! * the swap relies on `a*b == b*a` (IEEE multiplication commutes
//!   bitwise) and a transpose that moves bits without arithmetic;
//! * the worker pool (see [`crate::pool`]) assigns each output panel to
//!   exactly one thread via a fixed decomposition.
//!
//! Blocked, blocked+parallel, and every architecture path are therefore
//! bit-identical for finite inputs at any thread count;
//! `tests/kernel_equivalence.rs` enforces this against an emulated
//! oracle. The retained seed kernels in [`crate::naive`] use *unfused*
//! multiply-then-add and are only a benchmark baseline, not an oracle.

use crate::dispatch;
use crate::pool;
use crate::simd;
use std::cell::RefCell;

/// Rows of the register tile (output rows per micro-panel). Eight rows
/// give the FMA units eight independent accumulation chains per column
/// vector — enough to cover FMA latency at two issues per cycle.
pub(crate) const MR: usize = 8;
/// Columns of the register tile (one 8-lane `f32` vector).
pub(crate) const NR: usize = 8;
/// `k`-chunk length: one `KC x NR` B-panel slice (8 KiB) plus the A rows
/// feeding it stay L1-resident while the register tile sweeps a chunk.
const KC: usize = 256;
/// Outputs with at most this many row micro-panels take the skinny path.
const SKINNY_PANELS_M: usize = 2;
/// `k`-chunk length of the skinny path: small enough that a worker's
/// whole packed-B chunk (`panels * SKC * NR` floats) stays L2-resident.
const SKC: usize = 64;

/// Below this much work (`2*m*n*k` FLOPs) the packed path's overhead is
/// not worth it and a plain loop nest (same accumulation order) runs
/// instead.
const SMALL_FLOPS: usize = 32 * 1024;

/// How a GEMM operand is stored relative to its logical orientation.
#[derive(Clone, Copy)]
pub(crate) enum Src<'a> {
    /// Stored row-major in its logical orientation (`A`: `m x k`,
    /// `B`: `k x n`).
    Normal(&'a [f32]),
    /// Stored row-major *transposed* (`A`: `k x m`, `B`: `n x k`); packing
    /// reads through the transpose so no intermediate is materialized.
    Transposed(&'a [f32]),
}

thread_local! {
    static BPACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static TSCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Cache-blocked transpose: `dst[c * rows + r] = src[r * cols + c]`,
/// walked in 32x32 tiles so both sides stay within a few cache lines.
pub(crate) fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    for r0 in (0..rows).step_by(TB) {
        let r_end = (r0 + TB).min(rows);
        for c0 in (0..cols).step_by(TB) {
            let c_end = (c0 + TB).min(cols);
            for r in r0..r_end {
                for c in c0..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// `out = A' * B'` where `A'` is `m x k`, `B'` is `k x n` and `out` is a
/// row-major `m x n` buffer that is fully overwritten.
pub(crate) fn gemm_into(a: Src<'_>, b: Src<'_>, m: usize, n: usize, k: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    dispatch::note_dense_kernel(dispatch::kernel_arch());
    let work = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if work < SMALL_FLOPS {
        return gemm_small(a, b, m, n, k, out);
    }
    // Tall-skinny `A^T B` (the PowerSGD `Q = G^T P` shape): reading A
    // through the transpose touches one cache line per element. Compute
    // `(B^T A)^T` instead — then *both* operands are walked along
    // contiguous rows — and transpose the small result at the end.
    if let (Src::Transposed(da), Src::Normal(db)) = (a, b) {
        if m >= 4 * n && n.div_ceil(MR) <= SKINNY_PANELS_M {
            return TSCRATCH.with(|t| {
                let mut tmp = t.borrow_mut();
                tmp.clear();
                tmp.resize(n * m, 0.0);
                dispatch(
                    Src::Transposed(db),
                    Src::Normal(da),
                    n,
                    m,
                    k,
                    work,
                    &mut tmp,
                );
                transpose_into(&tmp, n, m, out);
            });
        }
    }
    dispatch(a, b, m, n, k, work, out);
}

/// Picks skinny vs packed for an already-size-screened problem.
fn dispatch(a: Src<'_>, b: Src<'_>, m: usize, n: usize, k: usize, work: usize, out: &mut [f32]) {
    if let Src::Normal(db) = b {
        if m.div_ceil(MR) <= SKINNY_PANELS_M {
            return gemm_skinny(a, db, m, n, k, work, out);
        }
    }
    gemm_packed(a, b, m, n, k, work, out);
}

/// FLOPs a worker thread must have to justify its spawn cost when the
/// parallel threshold is a real (nonzero) value: ~1 MiFLOP is tens of
/// microseconds of work against a few tens of microseconds of scoped
/// spawn overhead.
const PAR_WORK_PER_THREAD: usize = 1 << 20;

/// Pure thread-planning function: how many workers a GEMM of `work`
/// FLOPs over `panels` micro-panels fans out to, given the pool knobs and
/// the host's core count. Deterministic in its inputs; unit-tested
/// directly so the skinny-output regression (512x512 x rank-4 losing to
/// sequential under a forced fan-out) stays fixed.
fn plan_threads(
    work: usize,
    panels: usize,
    threshold: usize,
    pool_threads: usize,
    host_cores: usize,
) -> usize {
    if work < threshold {
        return 1;
    }
    let mut threads = pool_threads.min(panels);
    // `threshold == 0` is the testing escape hatch ("always fan out"):
    // equivalence tests use it to push tiny matrices through the
    // multi-threaded path, so the caps below must not apply.
    if threshold > 0 {
        threads = threads
            .min(host_cores.max(1))
            .min((work / PAR_WORK_PER_THREAD).max(1));
    }
    threads.max(1)
}

fn effective_threads(work: usize, panels: usize) -> usize {
    plan_threads(
        work,
        panels,
        pool::parallel_flop_threshold(),
        pool::kernel_threads(),
        pool::host_parallelism(),
    )
}

// ---------------------------------------------------------------------------
// Packed path (general shapes)
// ---------------------------------------------------------------------------

/// Pack B once, then fan row micro-panels out over the worker pool.
fn gemm_packed(a: Src<'_>, b: Src<'_>, m: usize, n: usize, k: usize, work: usize, out: &mut [f32]) {
    let panels_n = n.div_ceil(NR);
    let panels_m = m.div_ceil(MR);
    BPACK.with(|bp| {
        let mut bpack = bp.borrow_mut();
        bpack.clear();
        bpack.resize(panels_n * k * NR, 0.0);
        pack_b(b, n, k, panels_n, &mut bpack);

        let threads = effective_threads(work, panels_m);
        if threads <= 1 {
            return run_row_panels(a, m, n, k, &bpack, 0, panels_m, out);
        }
        // Fixed decomposition of row micro-panels over the worker pool;
        // each worker owns a disjoint, contiguous slab of output rows.
        let ranges = pool::panel_ranges(panels_m, threads);
        std::thread::scope(|scope| {
            let mut rest = out;
            let mut row_cursor = 0usize;
            for &(pstart, pend) in &ranges {
                if pstart == pend {
                    continue;
                }
                let row_end = (pend * MR).min(m);
                let (chunk, tail) = rest.split_at_mut((row_end - row_cursor) * n);
                rest = tail;
                row_cursor = row_end;
                let bpack = &bpack[..];
                scope.spawn(move || run_row_panels(a, m, n, k, bpack, pstart, pend, chunk));
            }
        });
    });
}

/// Computes row micro-panels `[pstart, pend)`; `out_chunk` starts at row
/// `pstart * MR` of the logical output.
#[allow(clippy::too_many_arguments)]
fn run_row_panels(
    a: Src<'_>,
    m: usize,
    n: usize,
    k: usize,
    bpack: &[f32],
    pstart: usize,
    pend: usize,
    out_chunk: &mut [f32],
) {
    let arch = dispatch::kernel_arch();
    let panels_n = n.div_ceil(NR);
    let n_kchunks = k.div_ceil(KC).max(1);
    let mut apack = [0.0f32; KC * MR];
    for mp in pstart..pend {
        let row0 = mp * MR;
        let mr_eff = MR.min(m - row0);
        let chunk_row0 = row0 - pstart * MR;
        for ci in 0..n_kchunks {
            let k0 = ci * KC;
            let k1 = (k0 + KC).min(k);
            let kc = k1 - k0;
            // Row-major A feeds the micro-kernel directly as MR contiguous
            // row streams; transposed A (and ragged edge panels) are packed
            // so the kernel always sees full MR lanes.
            let direct_rows: Option<[&[f32]; MR]> = match a {
                Src::Normal(d) if mr_eff == MR => Some(std::array::from_fn(|i| {
                    &d[(row0 + i) * k + k0..(row0 + i) * k + k1]
                })),
                _ => {
                    pack_a_chunk(a, m, k, row0, mr_eff, k0, k1, &mut apack[..kc * MR]);
                    None
                }
            };
            for p in 0..panels_n {
                let nr_eff = NR.min(n - p * NR);
                let mut acc = [[0.0f32; NR]; MR];
                if ci > 0 {
                    load_acc(&mut acc, out_chunk, chunk_row0, n, p * NR, mr_eff, nr_eff);
                }
                let bslice = &bpack[(p * k + k0) * NR..(p * k + k1) * NR];
                match &direct_rows {
                    Some(rows) => simd::micro_kernel_rows(arch, rows, bslice, &mut acc),
                    None => simd::micro_kernel_packed(arch, &apack[..kc * MR], bslice, &mut acc),
                }
                store_acc(&acc, out_chunk, chunk_row0, n, p * NR, mr_eff, nr_eff);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Skinny path (m <= MR * SKINNY_PANELS_M, row-major B)
// ---------------------------------------------------------------------------

/// Few output rows against a potentially huge row-major B: pack the small
/// A whole and walk B in `k`-chunks, repacking each chunk into an
/// L2-resident panel buffer with B's rows read *contiguously* (packing the
/// whole of a 64 MB gradient to multiply it by a rank-8 factor would cost
/// more than the product itself, and reading it column-band-strided is
/// latency-bound). Workers own column-panel ranges and write private
/// buffers that are stitched back row-wise — pure data movement, no
/// arithmetic.
fn gemm_skinny(a: Src<'_>, db: &[f32], m: usize, n: usize, k: usize, work: usize, out: &mut [f32]) {
    let panels_m = m.div_ceil(MR);
    let panels_n = n.div_ceil(NR);
    let mut apack_all = vec![0.0f32; panels_m * k * MR];
    for mp in 0..panels_m {
        let row0 = mp * MR;
        let mr_eff = MR.min(m - row0);
        pack_a_chunk(
            a,
            m,
            k,
            row0,
            mr_eff,
            0,
            k,
            &mut apack_all[mp * k * MR..(mp + 1) * k * MR],
        );
    }

    let threads = effective_threads(work, panels_n);
    if threads <= 1 {
        return run_col_panels(&apack_all, db, m, n, k, 0, panels_n, out, n);
    }
    let ranges = pool::panel_ranges(panels_n, threads);
    let mut parts: Vec<Vec<f32>> = ranges
        .iter()
        .map(|&(p0, p1)| {
            let width = ((p1 * NR).min(n)).saturating_sub(p0 * NR);
            vec![0.0f32; m * width]
        })
        .collect();
    std::thread::scope(|scope| {
        for (&(p0, p1), part) in ranges.iter().zip(parts.iter_mut()) {
            if p0 == p1 {
                continue;
            }
            let width = ((p1 * NR).min(n)).saturating_sub(p0 * NR);
            let apack_all = &apack_all[..];
            scope.spawn(move || run_col_panels(apack_all, db, m, n, k, p0, p1, part, width));
        }
    });
    for (&(p0, p1), part) in ranges.iter().zip(parts.iter()) {
        let col0 = p0 * NR;
        let width = ((p1 * NR).min(n)).saturating_sub(col0);
        for i in 0..m {
            out[i * n + col0..i * n + col0 + width]
                .copy_from_slice(&part[i * width..(i + 1) * width]);
        }
    }
}

/// Computes column panels `[pstart, pend)` into `out_part`, a row-major
/// `m x part_width` buffer whose column 0 is logical column
/// `pstart * NR`.
#[allow(clippy::too_many_arguments)]
fn run_col_panels(
    apack_all: &[f32],
    db: &[f32],
    m: usize,
    n: usize,
    k: usize,
    pstart: usize,
    pend: usize,
    out_part: &mut [f32],
    part_width: usize,
) {
    let arch = dispatch::kernel_arch();
    let panels_m = m.div_ceil(MR);
    let panels = pend - pstart;
    let n_kchunks = k.div_ceil(SKC).max(1);
    // Per-chunk packed B panels for this worker's column range; reused
    // across chunks so it stays cache-resident.
    let mut bchunk = vec![0.0f32; panels * SKC * NR];
    for ci in 0..n_kchunks {
        let k0 = ci * SKC;
        let k1 = (k0 + SKC).min(k);
        let kc = k1 - k0;
        // kk-outer scatter: B's rows are read contiguously (the only
        // sequential walk its storage admits); the per-panel write
        // cursors advance 32 bytes per row and stay hot.
        for kk in k0..k1 {
            let row = &db[kk * n..(kk + 1) * n];
            for p in pstart..pend {
                let col0 = p * NR;
                let nr_eff = NR.min(n - col0);
                let dst = &mut bchunk[((p - pstart) * SKC + (kk - k0)) * NR..][..nr_eff];
                dst.copy_from_slice(&row[col0..col0 + nr_eff]);
            }
        }
        for p in pstart..pend {
            let col0 = p * NR;
            let nr_eff = NR.min(n - col0);
            let part_col0 = col0 - pstart * NR;
            let bslice = &bchunk[(p - pstart) * SKC * NR..][..kc * NR];
            for mp in 0..panels_m {
                let row0 = mp * MR;
                let mr_eff = MR.min(m - row0);
                let apack = &apack_all[mp * k * MR..(mp + 1) * k * MR];
                let mut acc = [[0.0f32; NR]; MR];
                if ci > 0 {
                    load_acc(
                        &mut acc, out_part, row0, part_width, part_col0, mr_eff, nr_eff,
                    );
                }
                simd::micro_kernel_packed(arch, &apack[k0 * MR..k1 * MR], bslice, &mut acc);
                store_acc(&acc, out_part, row0, part_width, part_col0, mr_eff, nr_eff);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Micro-kernels and packing
// ---------------------------------------------------------------------------

/// Continue accumulation chains from a previous k-chunk: load the valid
/// region of the output tile (padded lanes stay zero; never stored).
fn load_acc(
    acc: &mut [[f32; NR]; MR],
    buf: &[f32],
    row0: usize,
    stride: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for (i, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
        let src = &buf[(row0 + i) * stride + col0..][..nr_eff];
        acc_row[..nr_eff].copy_from_slice(src);
    }
}

fn store_acc(
    acc: &[[f32; NR]; MR],
    buf: &mut [f32],
    row0: usize,
    stride: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
        let dst = &mut buf[(row0 + i) * stride + col0..][..nr_eff];
        dst.copy_from_slice(&acc_row[..nr_eff]);
    }
}

/// Packs `MR` rows of `A'` (rows `row0..row0+mr_eff`, zero-padded to `MR`)
/// over the `k`-range `[k0, k1)` into
/// `apack[(kk-k0)*MR + i] = A'(row0+i, kk)`.
#[allow(clippy::too_many_arguments)]
fn pack_a_chunk(
    a: Src<'_>,
    m: usize,
    k: usize,
    row0: usize,
    mr_eff: usize,
    k0: usize,
    k1: usize,
    apack: &mut [f32],
) {
    if mr_eff < MR {
        apack.fill(0.0);
    }
    match a {
        Src::Normal(d) => {
            for i in 0..mr_eff {
                let src = &d[(row0 + i) * k + k0..(row0 + i) * k + k1];
                for (kk, &v) in src.iter().enumerate() {
                    apack[kk * MR + i] = v;
                }
            }
        }
        Src::Transposed(d) => {
            // Stored k x m: row kk holds A'(_, kk) contiguously.
            for kk in k0..k1 {
                let src = &d[kk * m + row0..kk * m + row0 + mr_eff];
                apack[(kk - k0) * MR..(kk - k0) * MR + mr_eff].copy_from_slice(src);
            }
        }
    }
}

/// Packs all of `B'` into `NR`-wide column panels:
/// `bpack[(p*k + kk)*NR + j] = B'(kk, p*NR + j)`, zero-padded in `j`.
fn pack_b(b: Src<'_>, n: usize, k: usize, panels_n: usize, bpack: &mut [f32]) {
    match b {
        Src::Normal(d) => {
            // kk-outer scatter: read each B row once, contiguously; the
            // per-panel write cursors advance 32 bytes per row, so the
            // write working set is one line per panel.
            for kk in 0..k {
                let row = &d[kk * n..(kk + 1) * n];
                for p in 0..panels_n {
                    let col0 = p * NR;
                    let nr_eff = NR.min(n - col0);
                    let dst = &mut bpack[(p * k + kk) * NR..][..nr_eff];
                    dst.copy_from_slice(&row[col0..col0 + nr_eff]);
                }
            }
        }
        Src::Transposed(d) => {
            // Stored n x k: row j holds B'(_, j) contiguously.
            for p in 0..panels_n {
                let col0 = p * NR;
                let nr_eff = NR.min(n - col0);
                let panel = &mut bpack[p * k * NR..(p + 1) * k * NR];
                for j in 0..nr_eff {
                    let src = &d[(col0 + j) * k..(col0 + j + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Plain loop nests for small problems. Every output element is the same
/// ascending-`k` fused chain as the micro-kernels (`f32::mul_add` is the
/// contract's scalar form), so this path is bit-identical to the packed
/// path on every architecture — which is why it needs no arch dispatch of
/// its own.
fn gemm_small(a: Src<'_>, b: Src<'_>, m: usize, n: usize, k: usize, out: &mut [f32]) {
    out.fill(0.0);
    match (a, b) {
        (Src::Normal(da), Src::Normal(db)) => {
            // i-k-j: contiguous AXPY over the output row.
            for i in 0..m {
                let arow = &da[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for (kk, &av) in arow.iter().enumerate() {
                    let brow = &db[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
        }
        (Src::Transposed(da), Src::Normal(db)) => {
            // k-i-j over the k x m storage of A'.
            for kk in 0..k {
                let arow = &da[kk * m..(kk + 1) * m];
                let brow = &db[kk * n..(kk + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    let orow = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
        }
        (Src::Normal(da), Src::Transposed(db)) => {
            // i-j-k: contiguous dot products (a per-element chain, not the
            // lane-split reduction — that contract applies only to the
            // Gram–Schmidt dots in `linalg.rs`).
            for i in 0..m {
                let arow = &da[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &db[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        acc = av.mul_add(bv, acc);
                    }
                    out[i * n + j] = acc;
                }
            }
        }
        (Src::Transposed(da), Src::Transposed(db)) => {
            // Not reachable from the public API (no `t_matmul_t`), kept
            // total for completeness.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc = da[kk * m + i].mul_add(db[j * k + kk], acc);
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, SeedStream};

    fn assert_bits(label: &str, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len(), "{label}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: element {i} ({x} vs {y})"
            );
        }
    }

    fn small_reference(a: &Matrix, b: &Matrix, m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        gemm_small(
            Src::Normal(a.as_slice()),
            Src::Normal(b.as_slice()),
            m,
            n,
            k,
            &mut out,
        );
        out
    }

    #[test]
    fn packed_path_is_bit_identical_to_plain_loops_on_every_arch() {
        for arch in dispatch::available_arches() {
            for &(m, n, k) in &[
                (5, 9, 3),
                (7, 1, 13),
                (1, 17, 5),
                (33, 31, 29),
                // k spanning multiple KC chunks exercises the accumulator
                // spill/reload chain; m > 16 forces the packed (non-skinny)
                // path through `dispatch`.
                (21, 5, 2 * KC + 7),
            ] {
                dispatch::set_kernel_arch(arch);
                let mut rng = SeedStream::new((m * 1000 + n * 100 + k) as u64);
                let a = rng.uniform_matrix(m, k, 1.0);
                let b = rng.uniform_matrix(k, n, 1.0);
                let reference = small_reference(&a, &b, m, n, k);
                let mut got = vec![0.0; m * n];
                gemm_packed(
                    Src::Normal(a.as_slice()),
                    Src::Normal(b.as_slice()),
                    m,
                    n,
                    k,
                    2 * m * n * k,
                    &mut got,
                );
                assert_bits(&format!("packed/{}", arch.name()), &reference, &got);
            }
        }
        dispatch::set_kernel_arch(dispatch::detected_arch());
    }

    #[test]
    fn skinny_path_is_bit_identical_to_plain_loops_on_every_arch() {
        for arch in dispatch::available_arches() {
            for &(m, n, k) in &[(1, 40, 9), (4, 33, 2 * KC + 5), (13, 64, 17), (16, 7, 64)] {
                dispatch::set_kernel_arch(arch);
                let mut rng = SeedStream::new((m * 1000 + n * 100 + k) as u64);
                let a = rng.uniform_matrix(m, k, 1.0);
                let b = rng.uniform_matrix(k, n, 1.0);
                let reference = small_reference(&a, &b, m, n, k);
                let mut got = vec![0.0; m * n];
                gemm_skinny(
                    Src::Normal(a.as_slice()),
                    b.as_slice(),
                    m,
                    n,
                    k,
                    2 * m * n * k,
                    &mut got,
                );
                assert_bits(&format!("skinny/{}", arch.name()), &reference, &got);
            }
        }
        dispatch::set_kernel_arch(dispatch::detected_arch());
    }

    #[test]
    fn thread_plan_caps_skinny_outputs() {
        // The committed-baseline regression: 512x512 x rank-4 (2 MiFLOP)
        // forced onto 4 workers loses to sequential on small hosts. With a
        // real threshold the plan caps workers by host cores and by ~1
        // MiFLOP of work each; the forced threshold-0 testing mode stays
        // uncapped so equivalence tests still exercise the pool.
        let work_512x4 = 2 * 512 * 512 * 4; // 2 MiFLOP
        assert_eq!(plan_threads(work_512x4, 64, 1, 4, 1), 1, "1-core host");
        assert_eq!(
            plan_threads(work_512x4, 64, 1, 4, 8),
            2,
            "8-core host: 2 MiFLOP justifies two workers, not four"
        );
        let work_512x8 = 2 * 512 * 512 * 8;
        assert_eq!(plan_threads(work_512x8, 64, 1, 4, 8), 4);
        // Below the threshold: sequential.
        assert_eq!(plan_threads(1000, 64, 32 << 20, 4, 8), 1);
        // Threshold 0 (testing): uncapped by host cores or work floor.
        assert_eq!(plan_threads(100, 64, 0, 4, 1), 4);
        // Never more workers than panels, never zero.
        assert_eq!(plan_threads(work_512x8, 3, 1, 4, 8), 3);
        assert_eq!(plan_threads(usize::MAX, 0, 1, 4, 8), 1);
    }

    #[test]
    fn tall_skinny_swap_matches_direct_transposed_path() {
        let mut rng = SeedStream::new(77);
        // a stored k x m with m >> n triggers the swapped path in
        // gemm_into; gemm_packed on the same operands is the direct path.
        let (k, m, n) = (64usize, 96usize, 3usize);
        let a = rng.uniform_matrix(k, m, 1.0);
        let b = rng.uniform_matrix(k, n, 1.0);
        let mut swapped = vec![0.0; m * n];
        gemm_into(
            Src::Transposed(a.as_slice()),
            Src::Normal(b.as_slice()),
            m,
            n,
            k,
            &mut swapped,
        );
        let mut direct = vec![0.0; m * n];
        gemm_packed(
            Src::Transposed(a.as_slice()),
            Src::Normal(b.as_slice()),
            m,
            n,
            k,
            2 * m * n * k,
            &mut direct,
        );
        assert_bits("swap", &direct, &swapped);
    }

    #[test]
    fn blocked_transpose_matches_naive() {
        let mut rng = SeedStream::new(5);
        for &(r, c) in &[(1usize, 1usize), (7, 3), (33, 65), (40, 40)] {
            let m = rng.uniform_matrix(r, c, 1.0);
            let mut t = vec![0.0; r * c];
            transpose_into(m.as_slice(), r, c, &mut t);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[j * r + i], m[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn empty_dims_are_handled() {
        let mut out = [0.0f32; 0];
        gemm_into(Src::Normal(&[]), Src::Normal(&[]), 0, 0, 0, &mut out);
        let mut out = [9.0f32; 2];
        // k = 0: output must be zeroed, not left stale.
        gemm_into(Src::Normal(&[]), Src::Normal(&[]), 2, 1, 0, &mut out);
        assert_eq!(out, [0.0, 0.0]);
    }
}
