//! Deterministic random initialization.

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic stream of random matrices, seeded explicitly so that
/// every experiment in the reproduction is bit-reproducible.
///
/// # Example
///
/// ```
/// use opt_tensor::SeedStream;
/// let mut a = SeedStream::new(42);
/// let mut b = SeedStream::new(42);
/// assert_eq!(a.uniform_matrix(2, 2, 1.0), b.uniform_matrix(2, 2, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    rng: ChaCha8Rng,
}

impl SeedStream {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream; used to give each pipeline
    /// stage / data-parallel rank its own generator without sharing state.
    pub fn fork(&mut self, salt: u64) -> SeedStream {
        let s: u64 = self.rng.gen();
        SeedStream::new(s ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniform sample in `[-scale, scale)`.
    pub fn uniform(&mut self, scale: f32) -> f32 {
        self.rng.gen_range(-scale..scale)
    }

    /// A standard-normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(1e-7..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is undefined");
        self.rng.gen_range(0..bound)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        self.rng.gen_range(0.0..1.0)
    }

    /// A matrix with entries uniform in `[-scale, scale)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, scale: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.uniform(scale))
    }

    /// A matrix with standard-normal entries scaled by `std`.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal() * std)
    }
}

impl Persist for SeedStream {
    fn persist(&self, w: &mut Writer) {
        for word in self.rng.state_words() {
            w.u32(word);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut words = [0u32; ChaCha8Rng::STATE_WORDS];
        for word in &mut words {
            *word = r.u32()?;
        }
        let rng = ChaCha8Rng::from_state_words(words).ok_or(PersistError::Invalid {
            what: "ChaCha8 word position out of range",
        })?;
        Ok(SeedStream { rng })
    }
}

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight
/// matrix: entries uniform in `±sqrt(6 / (fan_in + fan_out))`.
///
/// # Example
///
/// ```
/// use opt_tensor::{xavier_uniform, SeedStream};
/// let mut rng = SeedStream::new(1);
/// let w = xavier_uniform(&mut rng, 128, 64);
/// assert_eq!(w.shape(), (128, 64));
/// assert!(w.max_abs() <= (6.0f32 / 192.0).sqrt());
/// ```
pub fn xavier_uniform(rng: &mut SeedStream, fan_in: usize, fan_out: usize) -> Matrix {
    let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform_matrix(fan_in, fan_out, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SeedStream::new(9);
        let mut b = SeedStream::new(9);
        for _ in 0..100 {
            assert_eq!(a.uniform(1.0), b.uniform(1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedStream::new(1);
        let mut b = SeedStream::new(2);
        let ma = a.uniform_matrix(4, 4, 1.0);
        let mb = b.uniform_matrix(4, 4, 1.0);
        assert_ne!(ma, mb);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SeedStream::new(5);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.uniform_matrix(3, 3, 1.0), c2.uniform_matrix(3, 3, 1.0));
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut rng = SeedStream::new(11);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f32;
        let var = sum_sq / n as f32 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SeedStream::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SeedStream::new(2);
        let w = xavier_uniform(&mut rng, 10, 30);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(w.max_abs() <= bound);
    }
}
