//! `opt-tensor` — a small dense `f32` matrix library.
//!
//! This crate is the numerical substrate of the Optimus-CC reproduction.
//! It provides the [`Matrix`] type with the operations needed by a
//! hand-written transformer (matmul, transpose, element-wise maps,
//! row/column reductions), the linear-algebra kernels needed by PowerSGD
//! gradient compression (Gram–Schmidt orthogonalization, products against
//! tall/skinny factors), and deterministic random initialization.
//!
//! # Example
//!
//! ```
//! use opt_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod init;
mod linalg;
mod matrix;
mod ops;
mod persist;
mod stats;

pub use init::{xavier_uniform, SeedStream};
pub use linalg::orthonormalize_columns;
pub use matrix::{Matrix, ShapeError};
pub use persist::{Persist, PersistError, Reader, Writer};
pub use stats::{cosine_similarity, frobenius_norm, mean, relative_error};
