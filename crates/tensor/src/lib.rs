//! `opt-tensor` — a small dense `f32` matrix library.
//!
//! This crate is the numerical substrate of the Optimus-CC reproduction.
//! It provides the [`Matrix`] type with the operations needed by a
//! hand-written transformer (matmul, transpose, element-wise maps,
//! row/column reductions), the linear-algebra kernels needed by PowerSGD
//! gradient compression (Gram–Schmidt orthogonalization, products against
//! tall/skinny factors), and deterministic random initialization.
//!
//! The matrix products run on a cache-blocked, register-tiled GEMM layer
//! (see `gemm.rs`) with vectorized micro-kernels (AVX2+FMA on x86_64,
//! NEON on aarch64, scalar `mul_add` fallback) selected once at startup
//! by a runtime dispatch module ([`kernel_arch`], overridable via
//! `OPT_KERNEL_ARCH`). Large outputs fan across a small deterministic
//! worker pool (`OPT_KERNEL_THREADS`, see [`kernel_threads`]). The kernel
//! contract — a fused-multiply-add accumulation chain per output element,
//! plus a fixed 8-lane split for dot reductions — makes results
//! **bit-identical** across every arch path and any thread count, so
//! training determinism (including checkpoint/restore bit-exactness)
//! survives both the SIMD and the parallelism. Sparse compressor payloads
//! apply through [`SparseMatrix`] kernels under the same contract.
//! Allocation-free `*_into` variants ([`Matrix::matmul_into`] and
//! friends) back the model and compressor hot paths.
//!
//! # Example
//!
//! ```
//! use opt_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod dispatch;
mod gemm;
mod init;
mod linalg;
mod matrix;
pub mod naive;
mod ops;
mod persist;
mod pool;
mod simd;
mod sparse;
mod stats;

pub use dispatch::{
    arch_available, available_arches, detected_arch, kernel_arch, kernel_arch_name,
    kernel_path_counts, reset_kernel_path_counts, set_kernel_arch, KernelArch,
};
pub use init::{xavier_uniform, SeedStream};
pub use linalg::orthonormalize_columns;
pub use matrix::{Matrix, ShapeError};
pub use persist::{codec_cycle_counts, Persist, PersistError, Reader, Writer};
pub use pool::{
    host_parallelism, kernel_threads, parallel_flop_threshold, set_kernel_threads,
    set_parallel_flop_threshold, MAX_KERNEL_THREADS,
};
pub use sparse::{
    set_sparse_density_max, sparse_density_max, SparseMatrix, DEFAULT_DENSITY_MAX,
};
pub use stats::{cosine_similarity, frobenius_norm, mean, relative_error};
