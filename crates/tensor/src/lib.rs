//! `opt-tensor` — a small dense `f32` matrix library.
//!
//! This crate is the numerical substrate of the Optimus-CC reproduction.
//! It provides the [`Matrix`] type with the operations needed by a
//! hand-written transformer (matmul, transpose, element-wise maps,
//! row/column reductions), the linear-algebra kernels needed by PowerSGD
//! gradient compression (Gram–Schmidt orthogonalization, products against
//! tall/skinny factors), and deterministic random initialization.
//!
//! The matrix products run on a cache-blocked, register-tiled GEMM layer
//! (see `gemm.rs`) that fans large outputs across a small deterministic
//! worker pool (`OPT_KERNEL_THREADS`, see [`kernel_threads`]). Results
//! are **bit-identical** to the retained seed-naive reference kernels
//! ([`naive`]) at any thread count, so training determinism — including
//! checkpoint/restore bit-exactness — survives the parallelism.
//! Allocation-free `*_into` variants ([`Matrix::matmul_into`] and
//! friends) back the model and compressor hot paths.
//!
//! # Example
//!
//! ```
//! use opt_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod gemm;
mod init;
mod linalg;
mod matrix;
pub mod naive;
mod ops;
mod persist;
mod pool;
mod stats;

pub use init::{xavier_uniform, SeedStream};
pub use linalg::orthonormalize_columns;
pub use matrix::{Matrix, ShapeError};
pub use persist::{codec_cycle_counts, Persist, PersistError, Reader, Writer};
pub use pool::{
    kernel_threads, parallel_flop_threshold, set_kernel_threads, set_parallel_flop_threshold,
    MAX_KERNEL_THREADS,
};
pub use stats::{cosine_similarity, frobenius_norm, mean, relative_error};
