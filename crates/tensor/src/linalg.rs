//! Linear-algebra kernels used by PowerSGD compression.

use crate::Matrix;

/// Orthonormalizes the columns of `m` in place using modified Gram–Schmidt.
///
/// This is the orthogonalization step of PowerSGD's single power iteration
/// (Vogels et al., NeurIPS'19). The paper's §9.6 identifies this kernel as
/// ~80 % of compression time, which is why the simulator's compression cost
/// model is proportional to its FLOP count.
///
/// Columns whose remaining norm is (numerically) zero are replaced with a
/// deterministic unit basis vector so the result always has orthonormal
/// columns, matching the reference implementation's `eps` guard.
///
/// # Example
///
/// ```
/// use opt_tensor::{orthonormalize_columns, Matrix};
/// let mut m = Matrix::from_rows(&[&[3.0, 1.0], &[4.0, 1.0], &[0.0, 1.0]]);
/// orthonormalize_columns(&mut m);
/// let gram = m.t_matmul(&m);
/// assert!((gram[(0, 0)] - 1.0).abs() < 1e-5);
/// assert!(gram[(0, 1)].abs() < 1e-5);
/// ```
pub fn orthonormalize_columns(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    const EPS: f32 = 1e-5;
    if rows == 0 || cols == 0 {
        return;
    }
    // PowerSGD factors are tall and skinny (`rows >> cols`), so walking a
    // column of the row-major input strides by `cols` on every element.
    // Work on a row-major *transposed panel* instead: panel row `c` holds
    // column `c` contiguously, so every dot/AXPY below is a straight-line
    // pass. The dot reductions use the fixed 8-lane split contract
    // ([`crate::simd::dot`]) — the same bits on every kernel arch — while
    // the AXPY/normalize loops stay plain elementwise ops, which are
    // bit-stable on any arch without dispatch.
    let mut panel = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for (c, &v) in m.row(r).iter().enumerate() {
            panel[c * rows + r] = v;
        }
    }

    let dot = crate::simd::dot;

    for c in 0..cols {
        // `split_at_mut` gives the already-final columns `0..c` immutably
        // alongside the in-progress column `c`.
        let (done, rest) = panel.split_at_mut(c * rows);
        let cur = &mut rest[..rows];
        // Subtract projections onto previous (already orthonormal) columns.
        // Two passes ("twice is enough") keep the result orthogonal even
        // when a column is nearly in the span of its predecessors.
        for _pass in 0..2 {
            for prev in 0..c {
                let prev_col = &done[prev * rows..(prev + 1) * rows];
                let d = dot(cur, prev_col);
                for (x, &p) in cur.iter_mut().zip(prev_col) {
                    *x -= d * p;
                }
            }
        }
        let norm = dot(cur, cur).sqrt();
        if norm > EPS {
            let inv = 1.0 / norm;
            for x in cur.iter_mut() {
                *x *= inv;
            }
        } else {
            // Degenerate column: replace with a unit basis vector that is
            // not in the span of the previous columns, found by projecting
            // candidate basis vectors and keeping the first with a large
            // residual (always exists when cols <= rows).
            'candidates: for t in 0..rows {
                let pick = (c + t) % rows;
                for (r, x) in cur.iter_mut().enumerate() {
                    *x = if r == pick { 1.0 } else { 0.0 };
                }
                for prev in 0..c {
                    let prev_col = &done[prev * rows..(prev + 1) * rows];
                    let d = dot(cur, prev_col);
                    for (x, &p) in cur.iter_mut().zip(prev_col) {
                        *x -= d * p;
                    }
                }
                let ns = dot(cur, cur);
                if ns.sqrt() > 0.5 {
                    let inv = 1.0 / ns.sqrt();
                    for x in cur.iter_mut() {
                        *x *= inv;
                    }
                    break 'candidates;
                }
            }
        }
    }

    for r in 0..rows {
        for (c, v) in m.row_mut(r).iter_mut().enumerate() {
            *v = panel[c * rows + r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    fn assert_orthonormal(m: &Matrix, tol: f32) {
        let gram = m.t_matmul(m);
        for i in 0..gram.rows() {
            for j in 0..gram.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (gram[(i, j)] - expect).abs() < tol,
                    "gram[{i},{j}] = {} (expected {expect})",
                    gram[(i, j)]
                );
            }
        }
    }

    #[test]
    fn orthonormalizes_random_tall_matrix() {
        let mut rng = SeedStream::new(7);
        let mut m = rng.uniform_matrix(64, 8, 1.0);
        orthonormalize_columns(&mut m);
        assert_orthonormal(&m, 1e-4);
    }

    #[test]
    fn already_orthonormal_is_stable() {
        let mut m = Matrix::identity(4);
        orthonormalize_columns(&mut m);
        assert_eq!(m, Matrix::identity(4));
    }

    #[test]
    fn handles_linearly_dependent_columns() {
        // Second column is 2x the first: after projection it collapses to
        // zero and must be replaced by a unit vector, keeping orthonormality.
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[0.0, 0.0]]);
        orthonormalize_columns(&mut m);
        assert_orthonormal(&m, 1e-4);
    }

    #[test]
    fn handles_zero_matrix() {
        let mut m = Matrix::zeros(3, 2);
        orthonormalize_columns(&mut m);
        assert_orthonormal(&m, 1e-6);
    }

    #[test]
    fn span_is_preserved_for_full_rank_input() {
        // Q^T A should reconstruct A when columns of Q span col(A):
        // check A - Q Q^T A == 0 for a square full-rank A.
        let mut rng = SeedStream::new(3);
        let a = rng.uniform_matrix(6, 6, 1.0);
        let mut q = a.clone();
        orthonormalize_columns(&mut q);
        let proj = q.matmul(&q.t_matmul(&a));
        let resid = a.sub(&proj);
        assert!(
            resid.norm() < 1e-3 * a.norm().max(1.0),
            "residual {}",
            resid.norm()
        );
    }
}
