//! The dense row-major `f32` matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error returned when two matrices have incompatible shapes for an
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Shape of the left-hand operand.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand.
    pub rhs: (usize, usize),
    /// Name of the operation that failed.
    pub op: &'static str,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the only tensor type in the reproduction; vectors are
/// represented as `n x 1` or `1 x n` matrices, and batched activations as
/// `(batch * seq) x hidden` matrices, mirroring how Megatron-LM folds batch
/// and sequence dimensions before its GEMMs.
///
/// # Example
///
/// ```
/// use opt_tensor::Matrix;
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// ```
    /// # use opt_tensor::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix containing rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    #[must_use]
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat requires equal column counts");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix containing columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    #[must_use]
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice out of bounds"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + start..r * self.cols + end];
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// No-allocation variant of [`Matrix::slice_cols`]: copies columns
    /// `[start, end)` into `out`, reshaping it as needed.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Matrix) {
        self.slice_block_into(0, self.rows, start, end, out);
    }

    /// Copies the sub-block of rows `[r0, r1)` x columns `[c0, c1)` into
    /// `out` (reshaped as needed, buffer reused) — the no-allocation
    /// workhorse behind per-head attention slicing.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds or reversed.
    pub fn slice_block_into(&self, r0: usize, r1: usize, c0: usize, c1: usize, out: &mut Matrix) {
        assert!(r0 <= r1 && r1 <= self.rows, "row slice out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column slice out of bounds");
        out.reshape_for_write(r1 - r0, c1 - c0);
        for r in r0..r1 {
            let src = &self.data[r * self.cols + c0..r * self.cols + c1];
            out.row_mut(r - r0).copy_from_slice(src);
        }
    }

    /// Copies `block` into `self` starting at column `start`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not fit (row count mismatch or columns
    /// overflow).
    pub fn paste_cols(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows, "paste_cols row mismatch");
        assert!(
            start + block.cols <= self.cols,
            "paste_cols overflows columns"
        );
        for r in 0..self.rows {
            let dst_start = r * self.cols + start;
            self.data[dst_start..dst_start + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Index of the maximum element in each row.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map_or(0, |(i, _)| i)
            })
            .collect()
    }

    /// Returns the transpose (cache-blocked 32x32 tile walk).
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        crate::gemm::transpose_into(&self.data, self.rows, self.cols, &mut out.data);
        out
    }

    /// Reshapes `self` to `rows x cols` for a full overwrite, reusing the
    /// existing allocation whenever it is large enough. Contents are
    /// unspecified afterwards; every `*_into` kernel overwrites all of
    /// them.
    pub(crate) fn reshape_for_write(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self * rhs`.
    ///
    /// Runs the cache-blocked, register-tiled kernel (the `gemm` module)
    /// on the dispatched micro-kernel arch ([`crate::kernel_arch`]); large
    /// products are fanned out over the deterministic worker pool. The
    /// fused-multiply-add chain contract makes results bit-identical
    /// across every arch path and thread count for finite inputs (the
    /// unfused [`crate::naive`] baseline agrees to rounding only).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// No-allocation variant of [`Matrix::matmul`]: reshapes `out` to
    /// `self.rows() x rhs.cols()` (reusing its buffer) and fully
    /// overwrites it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_for_write(self.rows, rhs.cols);
        crate::gemm::gemm_into(
            crate::gemm::Src::Normal(&self.data),
            crate::gemm::Src::Normal(&rhs.data),
            self.rows,
            rhs.cols,
            self.cols,
            &mut out.data,
        );
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    #[must_use]
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// No-allocation variant of [`Matrix::t_matmul`]: reshapes `out` to
    /// `self.cols() x rhs.cols()` (reusing its buffer) and fully
    /// overwrites it.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_for_write(self.cols, rhs.cols);
        crate::gemm::gemm_into(
            crate::gemm::Src::Transposed(&self.data),
            crate::gemm::Src::Normal(&rhs.data),
            self.cols,
            rhs.cols,
            self.rows,
            &mut out.data,
        );
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    #[must_use]
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// No-allocation variant of [`Matrix::matmul_t`]: reshapes `out` to
    /// `self.rows() x rhs.rows()` (reusing its buffer) and fully
    /// overwrites it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape_for_write(self.rows, rhs.rows);
        crate::gemm::gemm_into(
            crate::gemm::Src::Normal(&self.data),
            crate::gemm::Src::Transposed(&rhs.data),
            self.rows,
            rhs.rows,
            self.cols,
            &mut out.data,
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        // c[0][1] = sum_k a[0][k] * b[k][1] = 0*0 + 1*1 + 2*2 = 5
        assert_eq!(c[(0, 1)], 5.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r + 2 * c) as f32);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_fn(2, 5, |r, c| (r * c) as f32 + 1.0);
        let b = Matrix::from_fn(3, 5, |r, c| (r + c) as f32);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn row_access_and_slicing() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(a.row(2), &[4.0, 5.0]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 3.0]);
    }

    #[test]
    fn slice_and_paste_cols_roundtrip() {
        let a = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f32);
        let block = a.slice_cols(2, 5);
        assert_eq!(block.shape(), (3, 3));
        assert_eq!(block.row(1), &[8.0, 9.0, 10.0]);
        let mut b = Matrix::zeros(3, 6);
        b.paste_cols(2, &block);
        assert_eq!(b.slice_cols(2, 5), block);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn argmax_rows_finds_peaks() {
        let a = Matrix::from_rows(&[&[0.1, 0.9, 0.5], &[2.0, -1.0, 0.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn vcat_stacks() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.vcat(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn index_mut_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m[(1, 0)] = 9.0;
        assert_eq!(m[(1, 0)], 9.0);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 9.0, 0.0]);
    }
}
