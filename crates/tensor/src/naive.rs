//! The seed repository's scalar reference kernels.
//!
//! These are the original single-threaded, allocate-per-op loop nests that
//! [`Matrix::matmul`], [`Matrix::t_matmul`], [`Matrix::matmul_t`] and
//! [`crate::orthonormalize_columns`] shipped with, kept verbatim
//! (including the dense-path `a == 0.0` skip and the unfused
//! `acc += a * b` accumulation the optimized kernels drop) as the
//! **benchmark baseline**: the `bench_matrix` kernels axis reports
//! speedups of the dispatched kernels over exactly this code (the
//! `naive` variant rows in `BENCH_kernels.json`), and fails the run if a
//! blocked kernel drops below 0.9× of it.
//!
//! They are **not** the bit-exactness oracle. Since the micro-kernels
//! moved to fused-multiply-add chains (see `simd.rs`), the dispatched
//! kernels agree with these loops only to rounding; the bit contract is
//! defined (and independently emulated) in `tests/kernel_equivalence.rs`.
//!
//! They are not used on any hot path.

use crate::Matrix;

/// Seed-naive `a * b` (i-k-j loop order with a zero-skip branch).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "naive matmul shape mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = &a.as_slice()[i * k..(i + 1) * k];
        let orow = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Seed-naive `a^T * b` (k-outer accumulation with a zero-skip branch).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
#[must_use]
pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "naive t_matmul shape mismatch");
    let (kdim, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for kk in 0..kdim {
        let arow = &a.as_slice()[kk * m..(kk + 1) * m];
        let brow = &b.as_slice()[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Seed-naive `a * b^T` (i-j-k dot products).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
#[must_use]
pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "naive matmul_t shape mismatch");
    let (m, kdim) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = &a.as_slice()[i * kdim..(i + 1) * kdim];
        for j in 0..n {
            let brow = &b.as_slice()[j * kdim..(j + 1) * kdim];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out.as_mut_slice()[i * n + j] = acc;
        }
    }
    out
}

/// Seed-naive modified Gram–Schmidt over column-strided walks — the exact
/// code (and therefore the exact floating-point operation order) of the
/// original `orthonormalize_columns`.
pub fn orthonormalize_columns(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    const EPS: f32 = 1e-5;
    for c in 0..cols {
        for _pass in 0..2 {
            for prev in 0..c {
                let mut dot = 0.0;
                for r in 0..rows {
                    dot += m[(r, c)] * m[(r, prev)];
                }
                for r in 0..rows {
                    let sub = dot * m[(r, prev)];
                    m[(r, c)] -= sub;
                }
            }
        }
        let mut norm_sq = 0.0;
        for r in 0..rows {
            norm_sq += m[(r, c)] * m[(r, c)];
        }
        let norm = norm_sq.sqrt();
        if norm > EPS {
            let inv = 1.0 / norm;
            for r in 0..rows {
                m[(r, c)] *= inv;
            }
        } else {
            'candidates: for t in 0..rows.max(1) {
                let pick = (c + t) % rows.max(1);
                for r in 0..rows {
                    m[(r, c)] = if r == pick { 1.0 } else { 0.0 };
                }
                for prev in 0..c {
                    let mut dot = 0.0;
                    for r in 0..rows {
                        dot += m[(r, c)] * m[(r, prev)];
                    }
                    for r in 0..rows {
                        let sub = dot * m[(r, prev)];
                        m[(r, c)] -= sub;
                    }
                }
                let mut ns = 0.0;
                for r in 0..rows {
                    ns += m[(r, c)] * m[(r, c)];
                }
                if ns.sqrt() > 0.5 {
                    let inv = 1.0 / ns.sqrt();
                    for r in 0..rows {
                        m[(r, c)] *= inv;
                    }
                    break 'candidates;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(
            matmul(&a, &b),
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]])
        );
    }

    #[test]
    fn reference_transpose_variants_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r + 2 * c) as f32);
        assert_eq!(t_matmul(&a, &b), matmul(&a.transpose(), &b));
        let c = Matrix::from_fn(2, 3, |r, c| (r * c) as f32 + 1.0);
        let d = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        assert_eq!(matmul_t(&c, &d), matmul(&c, &d.transpose()));
    }
}
