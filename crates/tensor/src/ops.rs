//! Element-wise and reduction operations on [`Matrix`].

use crate::Matrix;

impl Matrix {
    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// In-place element-wise `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }

    /// In-place element-wise `self -= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Returns `self` scaled by `alpha`.
    #[must_use]
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| x * alpha)
    }

    /// In-place scaling by `alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.as_mut_slice() {
            *a *= alpha;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.as_slice().iter().map(|&x| f(x)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.as_mut_slice() {
            *a = f(*a);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    #[must_use]
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Dot product treating both matrices as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    #[must_use]
    pub fn dot(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Squared Frobenius norm.
    #[must_use]
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum()
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Maximum absolute element value; `0.0` for an empty matrix.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Per-row sums as an `rows x 1` matrix.
    #[must_use]
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            out[(r, 0)] = self.row(r).iter().sum();
        }
        out
    }

    /// Per-column sums as a `1 x cols` matrix.
    #[must_use]
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (c, &v) in self.row(r).iter().enumerate() {
                out[(0, c)] += v;
            }
        }
        out
    }

    /// Adds a `1 x cols` bias row to every row of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.shape(), (1, self.cols()), "bias must be 1 x cols");
        let mut out = self.clone();
        out.add_row_broadcast_assign(bias);
        out
    }

    /// In-place variant of [`Matrix::add_row_broadcast`]: adds a
    /// `1 x cols` bias row to every row of `self` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.shape(), (1, self.cols()), "bias must be 1 x cols");
        for r in 0..self.rows() {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias.row(0)) {
                *a += b;
            }
        }
    }

    fn zip_with(&self, rhs: &Matrix, op: &'static str, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "{op} shape mismatch");
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32)
    }

    #[test]
    fn add_sub_inverse() {
        let a = m(3, 3);
        let b = Matrix::full(3, 3, 2.5);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn hadamard_with_ones_is_identity() {
        let a = m(2, 4);
        assert_eq!(a.hadamard(&Matrix::full(2, 4, 1.0)), a);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = m(2, 2);
        let b = Matrix::full(2, 2, 1.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn scale_and_sum() {
        let a = m(2, 3); // 0..5 sums to 15
        assert_eq!(a.sum(), 15.0);
        assert_eq!(a.scale(2.0).sum(), 30.0);
        assert_eq!(a.mean_all(), 2.5);
    }

    #[test]
    fn dot_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(&a), 25.0);
    }

    #[test]
    fn row_and_col_sums() {
        let a = m(2, 3);
        assert_eq!(a.row_sums().as_slice(), &[3.0, 12.0]);
        assert_eq!(a.col_sums().as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn broadcast_bias() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::from_rows(&[&[1.0, -1.0]]);
        let out = a.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn max_abs_finds_extreme() {
        let a = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 2.0]]);
        assert_eq!(a.max_abs(), 7.0);
    }

    #[test]
    fn fill_zero_clears() {
        let mut a = m(2, 2);
        a.fill_zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "add shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = Matrix::zeros(1, 2).add(&Matrix::zeros(2, 1));
    }
}
