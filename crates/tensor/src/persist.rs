//! A small self-contained binary codec for checkpointable state.
//!
//! Everything the checkpoint subsystem (`opt-ckpt`) writes to disk goes
//! through this module: a little-endian byte [`Writer`]/[`Reader`] pair and
//! the [`Persist`] trait that state-carrying types across the workspace
//! implement ([`crate::Matrix`], [`crate::SeedStream`], the `opt-compress`
//! payloads and compressor states, optimizer moments, ...). Keeping the
//! codec here — at the bottom of the dependency DAG — lets every crate
//! serialize its own private state without a cyclic dependency on the
//! checkpoint crate.
//!
//! The format is deliberately boring: fixed-width little-endian integers,
//! `f32`/`f64` as IEEE-754 bit patterns, `u64` length prefixes for
//! variable-size payloads, and one tag byte per enum variant. Boring is
//! what you want from a format that must reproduce training state
//! *bit-exactly* across a kill/restore cycle.
//!
//! # Example
//!
//! ```
//! use opt_tensor::{Matrix, Persist};
//!
//! let m = Matrix::from_rows(&[&[1.0, -2.5], &[0.0, 4.0]]);
//! let bytes = m.to_bytes();
//! assert_eq!(Matrix::from_bytes(&bytes).unwrap(), m);
//! ```

use crate::Matrix;
use std::cell::Cell;
use std::fmt;

thread_local! {
    static ENCODE_CYCLES: Cell<u64> = const { Cell::new(0) };
    static DECODE_CYCLES: Cell<u64> = const { Cell::new(0) };
}

/// This thread's codec-cycle counters as `(encodes, decodes)`.
///
/// An *encode cycle* is one top-level [`Persist::to_bytes`] call; a
/// *decode cycle* is one top-level [`Persist::from_bytes`] call. Nested
/// `persist`/`restore` calls inside a composite value count as part of
/// their enclosing cycle, not separately. The counters are thread-local,
/// so a test can assert that a code path on its own thread performed zero
/// serialization without interference from concurrently running tests.
///
/// This is the observability hook behind the zero-copy transport
/// contract: a `LocalTransport` hop through the typed payload API must
/// leave both counters untouched.
pub fn codec_cycle_counts() -> (u64, u64) {
    (ENCODE_CYCLES.with(Cell::get), DECODE_CYCLES.with(Cell::get))
}

/// Error raised while decoding persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The byte stream ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// An enum tag byte had no matching variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A decoded value violated a type invariant (e.g. zero rank).
    Invalid {
        /// Description of the violated invariant.
        what: &'static str,
    },
    /// Bytes were left over after the top-level value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of state: needed {needed} bytes, {remaining} left"
                )
            }
            PersistError::BadTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            PersistError::Invalid { what } => write!(f, "invalid persisted value: {what}"),
            PersistError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Little-endian byte sink for [`Persist`] encoders.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk width is fixed).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f32` as its IEEE-754 bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over persisted bytes for [`Persist`] decoders.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the reader is fully consumed (guards against silently
    /// accepting oversized state blobs).
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, PersistError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `usize` persisted via [`Writer::usize`].
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Invalid {
            what: "length does not fit in usize",
        })
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length prefix that the caller will consume as `elem_bytes`-
    /// sized elements, verifying the stream is long enough *before* any
    /// allocation — a corrupted length can't trigger a huge `Vec` reserve.
    pub fn checked_len(&mut self, elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        let needed = n.checked_mul(elem_bytes).ok_or(PersistError::Invalid {
            what: "element count overflows",
        })?;
        if self.remaining() < needed {
            return Err(PersistError::UnexpectedEof {
                needed,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }
}

/// State that can round-trip through the checkpoint byte codec.
///
/// The contract is bit-exactness: `restore(persist(x))` must yield a value
/// whose future behavior is indistinguishable from `x` — same floats, same
/// RNG continuation, same warm-start factors.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn persist(&self, w: &mut Writer);

    /// Decodes one value from `r`, advancing the cursor.
    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError>;

    /// Encodes into a fresh byte vector. Counts one encode cycle in
    /// [`codec_cycle_counts`].
    fn to_bytes(&self) -> Vec<u8> {
        ENCODE_CYCLES.with(|c| c.set(c.get() + 1));
        let mut w = Writer::new();
        self.persist(&mut w);
        w.into_bytes()
    }

    /// Decodes from `bytes`, requiring every byte to be consumed. Counts
    /// one decode cycle in [`codec_cycle_counts`].
    fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        DECODE_CYCLES.with(|c| c.set(c.get() + 1));
        let mut r = Reader::new(bytes);
        let v = Self::restore(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Exact number of bytes [`Persist::persist`] would append, computed
    /// *without* producing them where possible.
    ///
    /// The default implementation serializes into a scratch writer (it
    /// does **not** count as an encode cycle, but it does pay the
    /// encoding work); types on transport hot paths override it with
    /// arithmetic so byte accounting never serializes. The override must
    /// satisfy `persist_len() == to_bytes().len()` exactly — the
    /// zero-copy transport relies on it for channel-stats parity between
    /// backends.
    fn persist_len(&self) -> usize {
        let mut w = Writer::new();
        self.persist(&mut w);
        w.len()
    }
}

impl Persist for Matrix {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.rows());
        w.usize(self.cols());
        for &x in self.as_slice() {
            w.f32(x);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let rows = r.usize()?;
        let cols = r.usize()?;
        let len = rows.checked_mul(cols).ok_or(PersistError::Invalid {
            what: "matrix shape overflows",
        })?;
        if r.remaining() < len.saturating_mul(4) {
            return Err(PersistError::UnexpectedEof {
                needed: len * 4,
                remaining: r.remaining(),
            });
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn persist_len(&self) -> usize {
        8 + 8 + 4 * self.len()
    }
}

/// Scalar encodings, so wire messages and composite state can nest
/// primitives through the same one-codec path as tensors.
macro_rules! persist_scalar {
    ($($ty:ty => $write:ident / $read:ident / $len:expr),* $(,)?) => {
        $(impl Persist for $ty {
            fn persist(&self, w: &mut Writer) {
                w.$write(*self);
            }

            fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
                r.$read()
            }

            fn persist_len(&self) -> usize {
                $len
            }
        })*
    };
}

persist_scalar!(
    u8 => u8 / u8 / 1,
    u32 => u32 / u32 / 4,
    u64 => u64 / u64 / 8,
    usize => usize / usize / 8,
    f32 => f32 / f32 / 4,
    f64 => f64 / f64 / 8,
);

impl Persist for String {
    fn persist(&self, w: &mut Writer) {
        w.bytes(self.as_bytes());
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        String::from_utf8(r.bytes()?).map_err(|_| PersistError::Invalid {
            what: "string is not valid UTF-8",
        })
    }

    fn persist_len(&self) -> usize {
        8 + self.len()
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut Writer) {
        self.0.persist(w);
        self.1.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }

    fn persist_len(&self) -> usize {
        self.0.persist_len() + self.1.persist_len()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.persist(w);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            tag => Err(PersistError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }

    fn persist_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Persist::persist_len)
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        // Every Persist encoding occupies at least one byte; bound the
        // pre-allocation by what the stream can actually hold.
        let n = r.checked_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }

    fn persist_len(&self) -> usize {
        8 + self.iter().map(Persist::persist_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    #[test]
    fn primitive_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i32(-42);
        w.f32(-0.0);
        w.f64(std::f64::consts::PI);
        w.bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn matrix_roundtrip_preserves_bits() {
        let m = Matrix::from_rows(&[&[1.5, f32::MIN_POSITIVE], &[-0.0, 3.25e-20]]);
        let back = Matrix::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.shape(), (2, 2));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_matrix_is_rejected_without_allocation() {
        let m = Matrix::zeros(8, 8);
        let bytes = m.to_bytes();
        let err = Matrix::from_bytes(&bytes[..20]).unwrap_err();
        assert!(matches!(err, PersistError::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Matrix::zeros(1, 1).to_bytes();
        bytes.push(0);
        assert!(matches!(
            Matrix::from_bytes(&bytes),
            Err(PersistError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn option_and_vec_compose() {
        let v: Vec<Option<Matrix>> = vec![None, Some(Matrix::full(2, 3, 1.25)), None];
        let back = Vec::<Option<Matrix>>::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bad_option_tag_is_rejected() {
        let mut w = Writer::new();
        w.u8(9);
        assert!(matches!(
            Option::<Matrix>::from_bytes(&w.into_bytes()),
            Err(PersistError::BadTag { what: "Option", .. })
        ));
    }

    #[test]
    fn seed_stream_roundtrip_continues_bit_exactly() {
        let mut a = SeedStream::new(99);
        // Burn an odd number of draws so the RNG sits mid-block.
        let _ = a.uniform_matrix(3, 3, 1.0);
        let _ = a.normal();
        let mut b = SeedStream::from_bytes(&a.to_bytes()).unwrap();
        for _ in 0..64 {
            assert_eq!(a.uniform(1.0).to_bits(), b.uniform(1.0).to_bits());
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
        }
    }

    #[test]
    fn corrupt_seed_stream_state_is_invalid() {
        let bytes = SeedStream::new(1).to_bytes();
        let mut broken = bytes.clone();
        // Word position is the last persisted u32; push it out of range.
        let n = broken.len();
        broken[n - 4..].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            SeedStream::from_bytes(&broken),
            Err(PersistError::Invalid { .. })
        ));
    }

    #[test]
    fn persist_len_matches_encoded_length() {
        let m = Matrix::from_rows(&[&[1.5, -2.0, 3.0], &[0.0, 4.0, -5.5]]);
        assert_eq!(m.persist_len(), m.to_bytes().len());
        assert_eq!(7u8.persist_len(), 1);
        assert_eq!(7u32.persist_len(), 4);
        assert_eq!(7u64.persist_len(), 8);
        assert_eq!(7usize.persist_len(), 8);
        assert_eq!(1.5f32.persist_len(), 4);
        assert_eq!(1.5f64.persist_len(), 8);
        let s = "hello".to_string();
        assert_eq!(s.persist_len(), s.to_bytes().len());
        let pair = (3u64, m.clone());
        assert_eq!(pair.persist_len(), pair.to_bytes().len());
        let opt: Option<Matrix> = Some(m.clone());
        assert_eq!(opt.persist_len(), opt.to_bytes().len());
        let none: Option<Matrix> = None;
        assert_eq!(none.persist_len(), none.to_bytes().len());
        let v = vec![m.clone(), Matrix::zeros(1, 1)];
        assert_eq!(v.persist_len(), v.to_bytes().len());
    }

    #[test]
    fn codec_cycles_count_top_level_calls_only() {
        // Counters are thread-local; run on a fresh thread so parallel
        // tests cannot interfere.
        std::thread::spawn(|| {
            let (e0, d0) = codec_cycle_counts();
            let v: Vec<Option<Matrix>> = vec![Some(Matrix::full(2, 2, 1.0)), None];
            let bytes = v.to_bytes(); // one encode, nested values included
            let _ = Vec::<Option<Matrix>>::from_bytes(&bytes).unwrap(); // one decode
            let _ = v.persist_len(); // arithmetic or scratch-writer: no cycle
            let (e1, d1) = codec_cycle_counts();
            assert_eq!((e1 - e0, d1 - d0), (1, 1));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn display_messages_are_informative() {
        let eof = PersistError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(eof.to_string().contains("needed 8"));
        let tag = PersistError::BadTag {
            what: "Compressed",
            tag: 250,
        };
        assert!(tag.to_string().contains("Compressed"));
    }
}
