//! The deterministic kernel worker pool.
//!
//! Large GEMMs fan their output row-panels out across scoped worker
//! threads. The decomposition is a *fixed* function of the output shape and
//! the configured thread count — never of timing — and every output element
//! is produced by exactly one thread using the same ascending-`k`
//! accumulation chain as the sequential kernel. Results are therefore
//! **bit-identical** for any thread count, which is what lets the
//! checkpoint/restore subsystem guarantee bit-exact resume even when the
//! snapshot and the restored run use different `OPT_KERNEL_THREADS`
//! settings.
//!
//! The pool is "scoped": threads are spawned per call via
//! [`std::thread::scope`] so they can borrow the operands and disjoint
//! slices of the output without any `unsafe`. Spawn overhead is amortized
//! by only parallelizing calls above a FLOP threshold (see
//! [`parallel_flop_threshold`]).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on worker threads, whatever the environment says.
pub const MAX_KERNEL_THREADS: usize = 16;

/// Default cap applied on top of `available_parallelism` when
/// `OPT_KERNEL_THREADS` is unset: the kernels target "a small deterministic
/// worker pool", not the whole machine.
const DEFAULT_THREAD_CAP: usize = 8;

/// Below this many FLOPs (`2*m*n*k`) a GEMM runs sequentially on the
/// calling thread. Workers are scoped threads spawned per call (the
/// unsafe-free way to borrow operands), so each fan-out costs a few tens
/// of microseconds per worker; 32 MFLOPs (~1.5 ms of single-thread work)
/// keeps that under a few percent. A 4096x4096 gradient against a rank-8
/// factor is ~268 MFLOPs — comfortably parallel.
const DEFAULT_PARALLEL_FLOPS: usize = 32 * 1024 * 1024;

/// 0 means "not yet initialized from the environment".
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// 0 means "not yet probed".
static HOST_PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// The host's available parallelism, probed once. The GEMM thread planner
/// caps fan-out at this value (when a real FLOP threshold is configured)
/// so a pool sized for a big machine doesn't oversubscribe a small one —
/// the committed-baseline regression was exactly 4 workers contending for
/// 1 core on a skinny 2 MiFLOP product.
pub fn host_parallelism() -> usize {
    match HOST_PARALLELISM.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            HOST_PARALLELISM.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// usize::MAX means "not yet initialized" (0 is a meaningful override:
/// always parallelize).
static PARALLEL_FLOPS: AtomicUsize = AtomicUsize::new(usize::MAX);

fn threads_from_env() -> usize {
    std::env::var("OPT_KERNEL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(DEFAULT_THREAD_CAP)
        })
        .min(MAX_KERNEL_THREADS)
}

/// The number of worker threads the kernel layer fans out to.
///
/// Resolved once from `OPT_KERNEL_THREADS` (clamped to
/// `1..=`[`MAX_KERNEL_THREADS`]); without the variable it defaults to the
/// machine's available parallelism capped at a small pool size. Thread
/// count never changes results — see the module docs.
pub fn kernel_threads() -> usize {
    match KERNEL_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = threads_from_env();
            KERNEL_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the worker-thread count at runtime (benchmarks, determinism
/// tests). Clamped to `1..=`[`MAX_KERNEL_THREADS`]. Because kernels are
/// bit-identical across thread counts, this only ever changes speed.
pub fn set_kernel_threads(n: usize) {
    KERNEL_THREADS.store(n.clamp(1, MAX_KERNEL_THREADS), Ordering::Relaxed);
}

/// The FLOP count (`2*m*n*k`) above which a GEMM is fanned out to the
/// worker pool.
pub fn parallel_flop_threshold() -> usize {
    match PARALLEL_FLOPS.load(Ordering::Relaxed) {
        usize::MAX => {
            let v = std::env::var("OPT_KERNEL_PAR_THRESHOLD")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_PARALLEL_FLOPS)
                .min(usize::MAX - 1);
            PARALLEL_FLOPS.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Overrides the parallelization threshold (tests force `0` so that tiny
/// matrices exercise the multi-threaded path).
pub fn set_parallel_flop_threshold(flops: usize) {
    PARALLEL_FLOPS.store(flops.min(usize::MAX - 1), Ordering::Relaxed);
}

/// Fixed decomposition of `panels` micro-panels over `threads` workers:
/// worker `i` gets the half-open panel range returned at index `i`.
/// Contiguous, deterministic, and independent of runtime timing.
pub(crate) fn panel_ranges(panels: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(panels.max(1));
    let base = panels / threads;
    let rem = panels % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let len = base + usize::from(i < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_ranges_cover_exactly() {
        for panels in 0..40usize {
            for threads in 1..6usize {
                let ranges = panel_ranges(panels, threads);
                let mut next = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, next, "gap at {s} ({panels} panels, {threads} thr)");
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, panels, "{panels} panels over {threads} threads");
                // Balanced: no two ranges differ by more than one panel.
                let lens: Vec<_> = ranges.iter().map(|(s, e)| e - s).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn thread_override_round_trips() {
        set_kernel_threads(3);
        assert_eq!(kernel_threads(), 3);
        set_kernel_threads(0); // clamped up
        assert_eq!(kernel_threads(), 1);
        set_kernel_threads(usize::MAX); // clamped down
        assert_eq!(kernel_threads(), MAX_KERNEL_THREADS);
        set_kernel_threads(4);
    }

    #[test]
    fn threshold_override_round_trips() {
        let orig = parallel_flop_threshold();
        set_parallel_flop_threshold(123);
        assert_eq!(parallel_flop_threshold(), 123);
        set_parallel_flop_threshold(orig);
    }
}
