//! Architecture-specific micro-kernels and the lane-order accumulation
//! contract.
//!
//! # The kernel bit-contract
//!
//! Two accumulation shapes cover every kernel in this crate, and each has
//! one fixed, architecture-independent operation order:
//!
//! * **Per-element FMA chains** (GEMM, SpMM, sparse AXPY): every output
//!   element is a single fused-multiply-add chain over ascending `k` —
//!   `acc = fma(a_k, b_k, acc)`. The SIMD kernels vectorize across
//!   *output columns* (broadcast `a`, vector `b`), which interleaves
//!   different elements' chains but never reassociates any one chain.
//!   Correctly rounded FMA is unique, so hardware `vfmadd`/`vfma` and the
//!   scalar fallback's [`f32::mul_add`] produce identical bits.
//!
//! * **8-lane split dot reductions** ([`dot`], used by modified
//!   Gram–Schmidt): element `i` accumulates into lane `i % 8` (full
//!   8-element chunks round-robin the lanes; the tail fills lanes
//!   `0..len % 8`), each lane being an FMA chain, and the eight lanes are
//!   reduced strictly left-to-right at the end. AVX2 holds the lanes in
//!   one `__m256`, NEON in two `float32x4`, and the scalar fallback in a
//!   `[f32; 8]` — same lanes, same chains, same final reduction, so the
//!   bits agree everywhere.
//!
//! `tests/kernel_equivalence.rs` pins both shapes against emulated
//! oracles across every architecture the host can execute.

use crate::dispatch::{kernel_arch, KernelArch};
use crate::gemm::{MR, NR};

/// Lane count of the split-dot contract (one AVX2 vector of `f32`).
pub(crate) const DOT_LANES: usize = 8;

/// The contract's final lane reduction: strictly left-to-right.
#[inline]
pub(crate) fn reduce_lanes(lanes: &[f32; DOT_LANES]) -> f32 {
    let mut acc = lanes[0];
    for &l in &lanes[1..] {
        acc += l;
    }
    acc
}

// ---------------------------------------------------------------------------
// Scalar fallback (also the contract's executable definition)
// ---------------------------------------------------------------------------

/// Packed-A micro-kernel, scalar contract emulation:
/// `acc[i][j] = fma(apack[k][i], bpanel[k][j], acc[i][j])`, `k` ascending.
#[inline(always)]
pub(crate) fn micro_kernel_packed_scalar(apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in apack.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = ap[i];
            for j in 0..NR {
                acc[i][j] = ai.mul_add(bp[j], acc[i][j]);
            }
        }
    }
}

/// Direct-rows micro-kernel (row-major A streamed without packing),
/// scalar contract emulation.
#[inline(always)]
pub(crate) fn micro_kernel_rows_scalar(
    arows: &[&[f32]; MR],
    bpanel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (kk, bp) in bpanel.chunks_exact(NR).enumerate() {
        for i in 0..MR {
            let ai = arows[i][kk];
            for j in 0..NR {
                acc[i][j] = ai.mul_add(bp[j], acc[i][j]);
            }
        }
    }
}

/// 8-lane split dot product, scalar contract emulation.
#[inline(always)]
pub(crate) fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; DOT_LANES];
    let chunks = a.len() / DOT_LANES;
    for c in 0..chunks {
        for (j, lane) in lanes.iter_mut().enumerate() {
            let idx = c * DOT_LANES + j;
            *lane = a[idx].mul_add(b[idx], *lane);
        }
    }
    let base = chunks * DOT_LANES;
    for (j, lane) in lanes.iter_mut().enumerate().take(a.len() - base) {
        *lane = a[base + j].mul_add(b[base + j], *lane);
    }
    reduce_lanes(&lanes)
}

/// `dst[j] = fma(a, src[j], dst[j])` — the SpMM row update, scalar
/// contract emulation.
#[inline(always)]
pub(crate) fn fma_axpy_scalar(dst: &mut [f32], a: f32, src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = a.mul_add(s, *d);
    }
}

// A note on the scalar fallback's speed: on builds whose baseline target
// features lack hardware FMA (plain x86_64 builds), [`f32::mul_add`]
// lowers to a libm `fmaf` call per multiply, which makes the scalar tile
// roughly an order of magnitude slower than the unfused seed-naive
// loops. That cost is inherent to the bit contract — a correctly rounded
// fused chain is the only accumulation every architecture can reproduce
// exactly — and the scalar tile is the contract's portable reference,
// not a performance path. `BENCH_kernels.json` records it as the
// `blocked_scalar` variant next to the SIMD rows.

// ---------------------------------------------------------------------------
// AVX2 + FMA (x86_64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{DOT_LANES, MR, NR};
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// The host must support AVX2 and FMA (guaranteed by dispatch).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn micro_kernel_packed(
        apack: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let kc = bpanel.len() / NR;
        debug_assert_eq!(apack.len(), kc * MR);
        let mut vacc = [_mm256_setzero_ps(); MR];
        for (v, row) in vacc.iter_mut().zip(acc.iter()) {
            *v = _mm256_loadu_ps(row.as_ptr());
        }
        let ap = apack.as_ptr();
        let bp = bpanel.as_ptr();
        for kk in 0..kc {
            let b = _mm256_loadu_ps(bp.add(kk * NR));
            for (i, v) in vacc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ap.add(kk * MR + i));
                *v = _mm256_fmadd_ps(a, b, *v);
            }
        }
        for (v, row) in vacc.iter().zip(acc.iter_mut()) {
            _mm256_storeu_ps(row.as_mut_ptr(), *v);
        }
    }

    /// # Safety
    ///
    /// The host must support AVX2 and FMA; every `arows[i]` must hold at
    /// least `bpanel.len() / NR` elements (guaranteed by the caller's
    /// slicing).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn micro_kernel_rows(
        arows: &[&[f32]; MR],
        bpanel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let kc = bpanel.len() / NR;
        let mut vacc = [_mm256_setzero_ps(); MR];
        for (v, row) in vacc.iter_mut().zip(acc.iter()) {
            *v = _mm256_loadu_ps(row.as_ptr());
        }
        let bp = bpanel.as_ptr();
        for kk in 0..kc {
            let b = _mm256_loadu_ps(bp.add(kk * NR));
            for (v, arow) in vacc.iter_mut().zip(arows.iter()) {
                let a = _mm256_set1_ps(*arow.as_ptr().add(kk));
                *v = _mm256_fmadd_ps(a, b, *v);
            }
        }
        for (v, row) in vacc.iter().zip(acc.iter_mut()) {
            _mm256_storeu_ps(row.as_mut_ptr(), *v);
        }
    }

    /// 8-lane split dot: the `__m256` accumulator *is* the lane array.
    ///
    /// # Safety
    ///
    /// The host must support AVX2 and FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / DOT_LANES;
        let mut vacc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(a.as_ptr().add(c * DOT_LANES));
            let vb = _mm256_loadu_ps(b.as_ptr().add(c * DOT_LANES));
            vacc = _mm256_fmadd_ps(va, vb, vacc);
        }
        let mut lanes = [0.0f32; DOT_LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), vacc);
        let base = chunks * DOT_LANES;
        for (j, lane) in lanes.iter_mut().enumerate().take(a.len() - base) {
            // Inside a `fma`-enabled function this compiles to vfmadd.
            *lane = a[base + j].mul_add(b[base + j], *lane);
        }
        super::reduce_lanes(&lanes)
    }

    /// # Safety
    ///
    /// The host must support AVX2 and FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn fma_axpy(dst: &mut [f32], a: f32, src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let chunks = n / 8;
        let va = _mm256_set1_ps(a);
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        for c in 0..chunks {
            let d = _mm256_loadu_ps(dp.add(c * 8));
            let s = _mm256_loadu_ps(sp.add(c * 8));
            _mm256_storeu_ps(dp.add(c * 8), _mm256_fmadd_ps(va, s, d));
        }
        for j in chunks * 8..n {
            dst[j] = a.mul_add(src[j], dst[j]);
        }
    }
}

// ---------------------------------------------------------------------------
// NEON (aarch64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use super::{DOT_LANES, MR, NR};
    use std::arch::aarch64::*;

    /// # Safety
    ///
    /// NEON is baseline on aarch64; pointers derive from the slices.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn micro_kernel_packed(
        apack: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let kc = bpanel.len() / NR;
        debug_assert_eq!(apack.len(), kc * MR);
        let mut lo = [vdupq_n_f32(0.0); MR];
        let mut hi = [vdupq_n_f32(0.0); MR];
        for i in 0..MR {
            lo[i] = vld1q_f32(acc[i].as_ptr());
            hi[i] = vld1q_f32(acc[i].as_ptr().add(4));
        }
        let ap = apack.as_ptr();
        let bp = bpanel.as_ptr();
        for kk in 0..kc {
            let b_lo = vld1q_f32(bp.add(kk * NR));
            let b_hi = vld1q_f32(bp.add(kk * NR + 4));
            for i in 0..MR {
                let a = vdupq_n_f32(*ap.add(kk * MR + i));
                lo[i] = vfmaq_f32(lo[i], a, b_lo);
                hi[i] = vfmaq_f32(hi[i], a, b_hi);
            }
        }
        for i in 0..MR {
            vst1q_f32(acc[i].as_mut_ptr(), lo[i]);
            vst1q_f32(acc[i].as_mut_ptr().add(4), hi[i]);
        }
    }

    /// # Safety
    ///
    /// NEON is baseline on aarch64; every `arows[i]` must hold at least
    /// `bpanel.len() / NR` elements.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn micro_kernel_rows(
        arows: &[&[f32]; MR],
        bpanel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let kc = bpanel.len() / NR;
        let mut lo = [vdupq_n_f32(0.0); MR];
        let mut hi = [vdupq_n_f32(0.0); MR];
        for i in 0..MR {
            lo[i] = vld1q_f32(acc[i].as_ptr());
            hi[i] = vld1q_f32(acc[i].as_ptr().add(4));
        }
        let bp = bpanel.as_ptr();
        for kk in 0..kc {
            let b_lo = vld1q_f32(bp.add(kk * NR));
            let b_hi = vld1q_f32(bp.add(kk * NR + 4));
            for i in 0..MR {
                let a = vdupq_n_f32(*arows[i].as_ptr().add(kk));
                lo[i] = vfmaq_f32(lo[i], a, b_lo);
                hi[i] = vfmaq_f32(hi[i], a, b_hi);
            }
        }
        for i in 0..MR {
            vst1q_f32(acc[i].as_mut_ptr(), lo[i]);
            vst1q_f32(acc[i].as_mut_ptr().add(4), hi[i]);
        }
    }

    /// 8-lane split dot: lanes 0–3 live in one `float32x4`, lanes 4–7 in
    /// another — the same lane assignment as one AVX2 vector.
    ///
    /// # Safety
    ///
    /// NEON is baseline on aarch64; pointers derive from the slices.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let chunks = a.len() / DOT_LANES;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let base = c * DOT_LANES;
            acc_lo = vfmaq_f32(
                acc_lo,
                vld1q_f32(a.as_ptr().add(base)),
                vld1q_f32(b.as_ptr().add(base)),
            );
            acc_hi = vfmaq_f32(
                acc_hi,
                vld1q_f32(a.as_ptr().add(base + 4)),
                vld1q_f32(b.as_ptr().add(base + 4)),
            );
        }
        let mut lanes = [0.0f32; DOT_LANES];
        vst1q_f32(lanes.as_mut_ptr(), acc_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
        let base = chunks * DOT_LANES;
        for (j, lane) in lanes.iter_mut().enumerate().take(a.len() - base) {
            *lane = a[base + j].mul_add(b[base + j], *lane);
        }
        super::reduce_lanes(&lanes)
    }

    /// # Safety
    ///
    /// NEON is baseline on aarch64; pointers derive from the slices.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn fma_axpy(dst: &mut [f32], a: f32, src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let chunks = n / 4;
        let va = vdupq_n_f32(a);
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        for c in 0..chunks {
            let d = vld1q_f32(dp.add(c * 4));
            let s = vld1q_f32(sp.add(c * 4));
            vst1q_f32(dp.add(c * 4), vfmaq_f32(d, va, s));
        }
        for j in chunks * 4..n {
            dst[j] = a.mul_add(src[j], dst[j]);
        }
    }
}

// ---------------------------------------------------------------------------
// Arch-dispatching wrappers
// ---------------------------------------------------------------------------

/// Packed-A micro-kernel under an explicit arch choice.
#[inline]
pub(crate) fn micro_kernel_packed(
    arch: KernelArch,
    apack: &[f32],
    bpanel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    match arch {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects Avx2 after feature detection.
        KernelArch::Avx2 => unsafe { avx2::micro_kernel_packed(apack, bpanel, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        KernelArch::Neon => unsafe { neon::micro_kernel_packed(apack, bpanel, acc) },
        _ => micro_kernel_packed_scalar(apack, bpanel, acc),
    }
}

/// Direct-rows micro-kernel under an explicit arch choice.
#[inline]
pub(crate) fn micro_kernel_rows(
    arch: KernelArch,
    arows: &[&[f32]; MR],
    bpanel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    match arch {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects Avx2 after feature detection.
        KernelArch::Avx2 => unsafe { avx2::micro_kernel_rows(arows, bpanel, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        KernelArch::Neon => unsafe { neon::micro_kernel_rows(arows, bpanel, acc) },
        _ => micro_kernel_rows_scalar(arows, bpanel, acc),
    }
}

/// Contract dot product under the process's dispatched arch.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_arch(kernel_arch(), a, b)
}

/// Contract dot product under an explicit arch choice.
#[inline]
pub(crate) fn dot_arch(arch: KernelArch, a: &[f32], b: &[f32]) -> f32 {
    match arch {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects Avx2 after feature detection.
        KernelArch::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        KernelArch::Neon => unsafe { neon::dot(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// `dst[j] = fma(a, src[j], dst[j])` under an explicit arch choice.
#[inline]
pub(crate) fn fma_axpy(arch: KernelArch, dst: &mut [f32], a: f32, src: &[f32]) {
    match arch {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects Avx2 after feature detection.
        KernelArch::Avx2 => unsafe { avx2::fma_axpy(dst, a, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        KernelArch::Neon => unsafe { neon::fma_axpy(dst, a, src) },
        _ => fma_axpy_scalar(dst, a, src),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::available_arches;
    use crate::SeedStream;

    #[test]
    fn dot_matches_scalar_contract_on_every_arch() {
        let mut rng = SeedStream::new(11);
        for len in [0usize, 1, 5, 8, 9, 64, 127] {
            let a = rng.uniform_matrix(1, len.max(1), 1.0);
            let b = rng.uniform_matrix(1, len.max(1), 1.0);
            let a = &a.as_slice()[..len];
            let b = &b.as_slice()[..len];
            let want = dot_scalar(a, b);
            for arch in available_arches() {
                let got = dot_arch(arch, a, b);
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "dot len {len} on {}: {want} vs {got}",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn fma_axpy_matches_scalar_contract_on_every_arch() {
        let mut rng = SeedStream::new(12);
        for len in [0usize, 3, 8, 17, 100] {
            let src = rng.uniform_matrix(1, len.max(1), 1.0);
            let base = rng.uniform_matrix(1, len.max(1), 1.0);
            let src = &src.as_slice()[..len];
            let mut want = base.as_slice()[..len].to_vec();
            fma_axpy_scalar(&mut want, 0.37, src);
            for arch in available_arches() {
                let mut got = base.as_slice()[..len].to_vec();
                fma_axpy(arch, &mut got, 0.37, src);
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "axpy len {len} on {}",
                        arch.name()
                    );
                }
            }
        }
    }

    #[test]
    fn micro_kernels_match_scalar_contract_on_every_arch() {
        let mut rng = SeedStream::new(13);
        for kc in [1usize, 2, 7, 64] {
            let apack = rng.uniform_matrix(1, kc * MR, 1.0);
            let bpanel = rng.uniform_matrix(1, kc * NR, 1.0);
            let init = rng.uniform_matrix(MR, NR, 1.0);
            let tile = |src: &crate::Matrix| {
                let mut acc = [[0.0f32; NR]; MR];
                for i in 0..MR {
                    acc[i].copy_from_slice(&src.as_slice()[i * NR..(i + 1) * NR]);
                }
                acc
            };
            let mut want = tile(&init);
            micro_kernel_packed_scalar(apack.as_slice(), bpanel.as_slice(), &mut want);
            for arch in available_arches() {
                let mut got = tile(&init);
                micro_kernel_packed(arch, apack.as_slice(), bpanel.as_slice(), &mut got);
                assert_eq!(want, got, "packed kernel kc {kc} on {}", arch.name());
            }
            // Rows variant: build contiguous per-row streams with the same
            // logical a-values, then compare against the packed result of
            // a matching pack.
            let rows: Vec<Vec<f32>> = (0..MR)
                .map(|i| (0..kc).map(|kk| apack.as_slice()[kk * MR + i]).collect())
                .collect();
            let arows: [&[f32]; MR] = std::array::from_fn(|i| rows[i].as_slice());
            let mut want_rows = tile(&init);
            micro_kernel_rows_scalar(&arows, bpanel.as_slice(), &mut want_rows);
            assert_eq!(want, want_rows, "rows and packed scalar kernels agree");
            for arch in available_arches() {
                let mut got = tile(&init);
                micro_kernel_rows(arch, &arows, bpanel.as_slice(), &mut got);
                assert_eq!(want_rows, got, "rows kernel kc {kc} on {}", arch.name());
            }
        }
    }
}
