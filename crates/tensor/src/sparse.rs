//! CSR sparse matrices and the sparse fast path for compressor payloads.
//!
//! Top-k and ternary compression produce payloads that are mostly zeros;
//! decoding them to a dense [`Matrix`] just to subtract or multiply pays
//! `rows * cols` of memory traffic for `nnz` of information. This module
//! gives those payloads a compressed-sparse-row representation with two
//! kernels:
//!
//! * [`SparseMatrix::sub_from`] — sparse AXPY-style subtract, the
//!   error-feedback residual update (`residual = corrected - decode(payload)`
//!   touches only the `nnz` selected entries).
//! * [`SparseMatrix::spmm`] — sparse × dense product, accumulating
//!   `out[r, :] += a[r, c] * b[c, :]` per stored entry.
//!
//! # Bit-exactness
//!
//! Both kernels follow the crate's fused-multiply-add contract (see
//! `simd.rs`) and dispatch on [`crate::kernel_arch`], so every arch path
//! produces identical bits. Against the *densify-then-dense* reference the
//! story is:
//!
//! * `sub_from` is unconditionally bit-identical: the skipped entries
//!   subtract an exact `+0.0`, and IEEE-754 guarantees `x - (+0.0) == x`
//!   bitwise for every `x` (including `-0.0` and NaN payload bits).
//! * `spmm` skips `fma(0.0, b, acc)` terms the dense kernel performs.
//!   Those are bit-identity except for one theoretical corner: an
//!   accumulator holding `-0.0` (only reachable when a product of two
//!   nonzero values underflows to `-0.0`, i.e. magnitudes around 1e-23)
//!   would be canonicalized to `+0.0` by the dense zero term. Gradient
//!   values are many orders of magnitude above the underflow threshold,
//!   and the proptest suite pins bit-identity on realistic magnitudes.
//!
//! # The crossover knob
//!
//! Sparse apply wins while the payload is sparse enough; near full density
//! the CSR indirection loses to straight dense loops. The crossover is a
//! process-wide density threshold, default [`DEFAULT_DENSITY_MAX`]
//! (profiled on the committed `BENCH_sparse.json` sweep), overridable via
//! `OPT_SPARSE_DENSITY_MAX` or [`set_sparse_density_max`]. Payload apply
//! sites in `opt-compress` compare `nnz / (rows * cols)` against this knob
//! and fall back to densify-then-dense above it.

use crate::dispatch;
use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::simd;
use crate::Matrix;
use std::sync::atomic::{AtomicU32, Ordering};

/// Default sparse-apply crossover density (see module docs): payloads at
/// or below this density take the CSR kernels, denser payloads densify.
/// The committed `BENCH_sparse.json` sweep puts the apply crossover
/// between 1% and 10% payload density, so 5% is the conservative cut.
pub const DEFAULT_DENSITY_MAX: f32 = 0.05;

/// `u32::MAX` (a NaN bit pattern we never store) means "not yet resolved".
static DENSITY_MAX: AtomicU32 = AtomicU32::new(u32::MAX);

/// The sparse-apply crossover density, resolved once from
/// `OPT_SPARSE_DENSITY_MAX` (else [`DEFAULT_DENSITY_MAX`]) on first use.
/// `0.0` disables the sparse path entirely; `1.0` always takes it.
pub fn sparse_density_max() -> f32 {
    match DENSITY_MAX.load(Ordering::Relaxed) {
        u32::MAX => {
            let v = std::env::var("OPT_SPARSE_DENSITY_MAX")
                .ok()
                .and_then(|s| s.trim().parse::<f32>().ok())
                .filter(|d| d.is_finite() && (0.0..=1.0).contains(d))
                .unwrap_or(DEFAULT_DENSITY_MAX);
            DENSITY_MAX.store(v.to_bits(), Ordering::Relaxed);
            v
        }
        bits => f32::from_bits(bits),
    }
}

/// Overrides the sparse-apply crossover density at runtime (benchmark
/// sweeps, tests). Clamped to `[0.0, 1.0]`. Because the sparse and dense
/// apply paths are bit-identical on compressor payloads, this only ever
/// changes speed.
pub fn set_sparse_density_max(density: f32) {
    let v = if density.is_finite() {
        density.clamp(0.0, 1.0)
    } else {
        DEFAULT_DENSITY_MAX
    };
    DENSITY_MAX.store(v.to_bits(), Ordering::Relaxed);
}

/// A compressed-sparse-row `f32` matrix.
///
/// Row `r`'s stored entries are `col_idx[row_ptr[r]..row_ptr[r+1]]` (column
/// indices, strictly ascending within a row) paired with the same range of
/// `values`. Indices are `u32` — payload coordinates already ship as `u32`
/// on the wire, and 4-byte indices halve the index traffic of the kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from a top-k style flat payload: `indices[i]`
    /// is the row-major flat position (`r * cols + c`) of `values[i]`,
    /// strictly ascending.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ, an index is out of range, or
    /// the indices are not strictly ascending (the top-k encoder's wire
    /// invariants).
    pub fn from_flat_payload(rows: usize, cols: usize, indices: &[u32], values: &[f32]) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        let total = rows * cols;
        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx = Vec::with_capacity(indices.len());
        let mut prev: Option<u32> = None;
        for &flat in indices {
            assert!((flat as usize) < total, "flat index {flat} out of range");
            assert!(
                prev.is_none_or(|p| flat > p),
                "flat indices must be strictly ascending"
            );
            prev = Some(flat);
            let r = flat as usize / cols.max(1);
            row_ptr[r + 1] += 1;
            col_idx.push(flat % cols.max(1) as u32);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values: values.to_vec(),
        }
    }

    /// Builds a CSR matrix from a ternary payload: `trits[i] ∈ {-1, 0, 1}`
    /// in row-major order, each nonzero trit contributing
    /// `(trit as f32) * scale` — the exact value the dense decoder writes.
    ///
    /// # Panics
    ///
    /// Panics if `trits.len() != rows * cols`.
    pub fn from_ternary(rows: usize, cols: usize, trits: &[i8], scale: f32) -> Self {
        assert_eq!(trits.len(), rows * cols, "trit count must equal rows*cols");
        let mut row_ptr = vec![0u32; rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for (flat, &t) in trits.iter().enumerate() {
            if t != 0 {
                row_ptr[flat / cols.max(1) + 1] += 1;
                col_idx.push((flat % cols.max(1)) as u32);
                values.push(f32::from(t) * scale);
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored entries as a fraction of the dense element count (`1.0` for
    /// an empty-shape matrix, which is as dense as it gets).
    pub fn density(&self) -> f32 {
        let total = self.rows * self.cols;
        if total == 0 {
            1.0
        } else {
            self.nnz() as f32 / total as f32
        }
    }

    /// Expands to a dense [`Matrix`] (the reference the sparse kernels are
    /// tested against; also the fallback when a payload is too dense).
    pub fn densify(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let data = out.as_mut_slice();
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                data[r * self.cols + c as usize] = v;
            }
        }
        out
    }

    /// Sparse AXPY-style subtract: `target[r, c] -= value` for every
    /// stored entry. Bit-identical to densifying and subtracting the dense
    /// matrix (`x - (+0.0) == x` bitwise), touching only `nnz` entries.
    ///
    /// # Panics
    ///
    /// Panics if `target`'s shape differs.
    pub fn sub_from(&self, target: &mut Matrix) {
        assert_eq!(target.shape(), (self.rows, self.cols), "shape mismatch");
        dispatch::note_sparse_kernel(dispatch::kernel_arch());
        let data = target.as_mut_slice();
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let base = r * self.cols;
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                data[base + c as usize] -= v;
            }
        }
    }

    /// Sparse × dense product into a zeroed output:
    /// `out[r, :] += a[r, c] * b[c, :]` per stored entry, each row panel
    /// accumulated with the crate's FMA chains (the dispatch module's
    /// `fma_axpy`), ascending column order — the same per-element chains
    /// as the dense GEMM over the stored entries.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.cols()` or `out`'s shape is not
    /// `(self.rows(), b.cols())`.
    pub fn spmm_into(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(b.rows(), self.cols, "inner dimension mismatch");
        assert_eq!(out.shape(), (self.rows, b.cols()), "output shape mismatch");
        let arch = dispatch::kernel_arch();
        dispatch::note_sparse_kernel(arch);
        let n = b.cols();
        let bdata = b.as_slice();
        let odata = out.as_mut_slice();
        odata.fill(0.0);
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let orow = &mut odata[r * n..(r + 1) * n];
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                let brow = &bdata[c as usize * n..(c as usize + 1) * n];
                simd::fma_axpy(arch, orow, v, brow);
            }
        }
    }

    /// Allocating wrapper around [`SparseMatrix::spmm_into`].
    pub fn spmm(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, b.cols());
        self.spmm_into(b, &mut out);
        out
    }
}

impl Persist for SparseMatrix {
    fn persist(&self, w: &mut Writer) {
        w.usize(self.rows);
        w.usize(self.cols);
        self.row_ptr.persist(w);
        self.col_idx.persist(w);
        self.values.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let rows = r.usize()?;
        let cols = r.usize()?;
        let row_ptr = Vec::<u32>::restore(r)?;
        let col_idx = Vec::<u32>::restore(r)?;
        let values = Vec::<f32>::restore(r)?;
        if row_ptr.len() != rows + 1 || row_ptr.first() != Some(&0) {
            return Err(PersistError::Invalid {
                what: "sparse row_ptr length",
            });
        }
        if row_ptr.windows(2).any(|w| w[1] < w[0]) {
            return Err(PersistError::Invalid {
                what: "sparse row_ptr not monotone",
            });
        }
        if *row_ptr.last().unwrap() as usize != values.len() || col_idx.len() != values.len() {
            return Err(PersistError::Invalid {
                what: "sparse nnz mismatch",
            });
        }
        if col_idx.iter().any(|&c| c as usize >= cols) {
            return Err(PersistError::Invalid {
                what: "sparse column index out of range",
            });
        }
        Ok(SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    fn persist_len(&self) -> usize {
        8 + 8
            + (8 + 4 * self.row_ptr.len())
            + (8 + 4 * self.col_idx.len())
            + (8 + 4 * self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    fn sample() -> SparseMatrix {
        // 3x4 with entries (0,1)=1.5, (0,3)=-2.0, (2,0)=0.25
        SparseMatrix::from_flat_payload(3, 4, &[1, 3, 8], &[1.5, -2.0, 0.25])
    }

    #[test]
    fn flat_payload_builds_expected_csr() {
        let s = sample();
        assert_eq!((s.rows(), s.cols(), s.nnz()), (3, 4, 3));
        assert_eq!(s.row_ptr, vec![0, 2, 2, 3]);
        assert_eq!(s.col_idx, vec![1, 3, 0]);
        let d = s.densify();
        assert_eq!(d[(0, 1)], 1.5);
        assert_eq!(d[(0, 3)], -2.0);
        assert_eq!(d[(2, 0)], 0.25);
        assert_eq!(d.as_slice().iter().filter(|&&x| x != 0.0).count(), 3);
    }

    #[test]
    fn ternary_payload_matches_dense_decode() {
        let trits: Vec<i8> = vec![0, 1, -1, 0, 0, 1, 0, -1];
        let s = SparseMatrix::from_ternary(2, 4, &trits, 0.75);
        let d = s.densify();
        for (i, &t) in trits.iter().enumerate() {
            let expect = f32::from(t) * 0.75;
            assert_eq!(d.as_slice()[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn sub_from_is_bit_identical_to_dense_subtract() {
        let s = sample();
        let mut rng = SeedStream::new(11);
        let base = rng.uniform_matrix(3, 4, 1.0);
        let mut sparse_path = base.clone();
        s.sub_from(&mut sparse_path);
        let dense = s.densify();
        let mut dense_path = base;
        for (x, &d) in dense_path.as_mut_slice().iter_mut().zip(dense.as_slice()) {
            *x -= d;
        }
        for (a, b) in sparse_path.as_slice().iter().zip(dense_path.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn spmm_matches_dense_matmul_on_every_arch() {
        let mut rng = SeedStream::new(12);
        let s = sample();
        let b = rng.uniform_matrix(4, 6, 1.0);
        let reference = s.densify().matmul(&b);
        for arch in dispatch::available_arches() {
            dispatch::set_kernel_arch(arch);
            let got = s.spmm(&b);
            for (a, r) in got.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), r.to_bits(), "arch {}", arch.name());
            }
        }
        dispatch::set_kernel_arch(dispatch::detected_arch());
    }

    #[test]
    fn persist_roundtrip_and_len() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.persist_len());
        assert_eq!(SparseMatrix::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn corrupt_csr_is_rejected() {
        let s = sample();
        // Break the last row_ptr entry (bytes 16+8.. hold row_ptr data).
        let mut w = Writer::new();
        w.usize(3);
        w.usize(4);
        vec![0u32, 2, 2, 9].persist(&mut w); // last != nnz
        vec![1u32, 3, 0].persist(&mut w);
        s.values.persist(&mut w);
        assert!(matches!(
            SparseMatrix::from_bytes(&w.into_bytes()),
            Err(PersistError::Invalid { .. })
        ));
        // Column index out of range.
        let mut w = Writer::new();
        w.usize(3);
        w.usize(4);
        vec![0u32, 2, 2, 3].persist(&mut w);
        vec![1u32, 7, 0].persist(&mut w);
        s.values.persist(&mut w);
        assert!(matches!(
            SparseMatrix::from_bytes(&w.into_bytes()),
            Err(PersistError::Invalid { .. })
        ));
    }

    #[test]
    fn density_knob_round_trips() {
        let orig = sparse_density_max();
        set_sparse_density_max(0.125);
        assert_eq!(sparse_density_max(), 0.125);
        set_sparse_density_max(7.0); // clamped
        assert_eq!(sparse_density_max(), 1.0);
        set_sparse_density_max(orig);
    }
}
