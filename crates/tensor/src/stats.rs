//! Statistics helpers used by the paper's Fig. 11 instrumentation
//! (error/activation independence analysis) and by compression metrics.

use crate::Matrix;

/// Cosine similarity between two matrices viewed as flat vectors.
///
/// Returns `0.0` if either vector has zero norm — the convention used by
/// the paper's Fig. 11 plots, where an all-zero error simply contributes a
/// zero similarity sample.
///
/// # Panics
///
/// Panics if element counts differ.
///
/// # Example
///
/// ```
/// use opt_tensor::{cosine_similarity, Matrix};
/// let a = Matrix::from_rows(&[&[1.0, 0.0]]);
/// let b = Matrix::from_rows(&[&[0.0, 1.0]]);
/// assert_eq!(cosine_similarity(&a, &b), 0.0);
/// assert_eq!(cosine_similarity(&a, &a), 1.0);
/// ```
pub fn cosine_similarity(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    a.dot(b) / (na * nb)
}

/// Frobenius norm of a matrix (free function form for call sites that
/// operate on references generically).
pub fn frobenius_norm(m: &Matrix) -> f32 {
    m.norm()
}

/// Mean of all elements.
pub fn mean(m: &Matrix) -> f32 {
    m.mean_all()
}

/// Relative reconstruction error `||a - b|| / ||a||`.
///
/// Returns `0.0` when `a` is exactly zero and `b` is too; returns
/// `f32::INFINITY` when `a` is zero but `b` is not.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "relative_error shape mismatch");
    let diff = a.sub(b).norm();
    let base = a.norm();
    if base == 0.0 {
        if diff == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        diff / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = Matrix::from_rows(&[&[2.0, 4.0, 6.0]]);
        let b = a.scale(0.5);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_antiparallel_is_minus_one() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = a.scale(-3.0);
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_norm_is_zero() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::full(2, 2, 1.0);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn relative_error_identical_is_zero() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        assert_eq!(relative_error(&a, &a), 0.0);
    }

    #[test]
    fn relative_error_scales() {
        let a = Matrix::full(1, 4, 2.0);
        let b = Matrix::full(1, 4, 1.0);
        assert!((relative_error(&a, &b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn relative_error_zero_base() {
        let z = Matrix::zeros(1, 2);
        assert_eq!(relative_error(&z, &z), 0.0);
        assert_eq!(relative_error(&z, &Matrix::full(1, 2, 1.0)), f32::INFINITY);
    }
}
