//! The kernel determinism contract, enforced end to end: the blocked and
//! blocked+parallel GEMM/orthonormalize kernels must be **bit-identical**
//! to the seed-naive reference ([`opt_tensor::naive`]) for finite inputs —
//! across odd shapes (1xN, Nx1, non-multiple-of-tile, empty) and across
//! worker-thread counts (1/2/4).
//!
//! This binary owns the process-global kernel knobs
//! ([`set_kernel_threads`], [`set_parallel_flop_threshold`]); integration
//! tests are separate processes, so tweaking them here cannot perturb the
//! rest of the suite. Within this binary the knobs only change *which*
//! code path runs — never the bits — which is exactly the property under
//! test.

use opt_tensor::{
    naive, orthonormalize_columns, set_kernel_threads, set_parallel_flop_threshold, Matrix,
    SeedStream,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn assert_bits_equal(label: &str, reference: &Matrix, got: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(reference.shape(), got.shape(), "{}: shape", label);
    for (i, (x, y)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} differs ({} vs {})",
            label,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Odd shape distribution: tile multiples, off-by-one, degenerate 1xN /
/// Nx1, and empty dimensions.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..5).prop_map(|sel| match sel {
        0 => 1,
        1 => 4,
        2 => 17, // crosses both MR (4) and NR (8) tile boundaries
        3 => 33,
        _ => 0, // empty
    })
}

/// Serializes every section that sets the process-global kernel knobs:
/// the libtest harness runs this binary's tests on parallel threads, and
/// without the lock a sibling test could retarget the thread count between
/// a `set_kernel_threads(n)` and the product it is meant to cover — the
/// results would still be bit-identical (that is the contract), but the
/// labeled 1/2/4-thread coverage would be fiction.
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `got` under 1, 2, and 4 worker threads (parallel threshold forced
/// to zero so even tiny shapes exercise the pool) and checks each result
/// bit-for-bit against `reference`.
fn check_all_thread_counts(
    label: &str,
    reference: &Matrix,
    mut got: impl FnMut() -> Matrix,
) -> Result<(), TestCaseError> {
    let _guard = KNOB_LOCK.lock().unwrap();
    let old_threshold = opt_tensor::parallel_flop_threshold();
    set_parallel_flop_threshold(0);
    for threads in [1usize, 2, 4] {
        set_kernel_threads(threads);
        let result = got();
        assert_bits_equal(&format!("{label} @{threads}thr"), reference, &result)?;
    }
    set_kernel_threads(1);
    set_parallel_flop_threshold(old_threshold);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_bit_identical_to_naive(m in dim(), n in dim(), k in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(m, k, 100.0);
        let b = rng.uniform_matrix(k, n, 100.0);
        let reference = naive::matmul(&a, &b);
        check_all_thread_counts("matmul", &reference, || a.matmul(&b))?;
    }

    #[test]
    fn t_matmul_is_bit_identical_to_naive(m in dim(), n in dim(), k in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(k, m, 100.0);
        let b = rng.uniform_matrix(k, n, 100.0);
        let reference = naive::t_matmul(&a, &b);
        check_all_thread_counts("t_matmul", &reference, || a.t_matmul(&b))?;
    }

    #[test]
    fn matmul_t_is_bit_identical_to_naive(m in dim(), n in dim(), k in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(m, k, 100.0);
        let b = rng.uniform_matrix(n, k, 100.0);
        let reference = naive::matmul_t(&a, &b);
        check_all_thread_counts("matmul_t", &reference, || a.matmul_t(&b))?;
    }

    #[test]
    fn tall_skinny_products_are_bit_identical(rows in 1usize..400, rank in 1usize..10, seed in 0u64..1000) {
        // The PowerSGD shapes: a big gradient against a skinny factor,
        // driving the swapped/skinny kernel paths.
        let mut rng = SeedStream::new(seed);
        let grad = rng.uniform_matrix(rows, rows / 2 + 1, 1.0);
        let q = rng.uniform_matrix(rows / 2 + 1, rank, 1.0);
        let p_ref = naive::matmul(&grad, &q);
        check_all_thread_counts("powersgd_p", &p_ref, || grad.matmul(&q))?;
        let q_ref = naive::t_matmul(&grad, &p_ref);
        check_all_thread_counts("powersgd_q", &q_ref, || grad.t_matmul(&p_ref))?;
    }

    #[test]
    fn orthonormalize_is_bit_identical_to_naive(rows in dim(), cols in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let m0 = rng.uniform_matrix(rows, cols, 1.0);
        let mut reference = m0.clone();
        naive::orthonormalize_columns(&mut reference);
        let mut got = m0.clone();
        orthonormalize_columns(&mut got);
        assert_bits_equal("orthonormalize", &reference, &got)?;
    }

    #[test]
    fn orthonormalize_handles_degenerate_columns_identically(rows in 1usize..20, seed in 0u64..500) {
        // Duplicated / zero columns force the unit-basis replacement
        // branch; it must stay bit-identical too.
        let mut rng = SeedStream::new(seed);
        let base = rng.uniform_matrix(rows, 1, 1.0);
        let mut m0 = Matrix::zeros(rows, 3);
        for r in 0..rows {
            m0[(r, 0)] = base[(r, 0)];
            m0[(r, 1)] = 2.0 * base[(r, 0)]; // linearly dependent
            // column 2 stays all-zero
        }
        let mut reference = m0.clone();
        naive::orthonormalize_columns(&mut reference);
        let mut got = m0.clone();
        orthonormalize_columns(&mut got);
        assert_bits_equal("orthonormalize-degenerate", &reference, &got)?;
    }

    #[test]
    fn into_variants_reuse_buffers_and_match(seed in 0u64..500) {
        // *_into must equal the allocating variants even when the output
        // buffer starts with a stale shape and stale contents.
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(13, 9, 1.0);
        let b = rng.uniform_matrix(9, 21, 1.0);
        let mut out = rng.uniform_matrix(3, 2, 1.0); // wrong shape, junk data
        a.matmul_into(&b, &mut out);
        assert_bits_equal("matmul_into", &a.matmul(&b), &out)?;
        let c = rng.uniform_matrix(13, 21, 1.0);
        a.t_matmul_into(&c, &mut out);
        assert_bits_equal("t_matmul_into", &a.t_matmul(&c), &out)?;
        let d = rng.uniform_matrix(4, 9, 1.0);
        a.matmul_t_into(&d, &mut out);
        assert_bits_equal("matmul_t_into", &a.matmul_t(&d), &out)?;
    }
}

/// The headline determinism property as a plain test: one large-ish
/// matmul, bit-compared across 1/2/4 threads against the naive kernel.
#[test]
fn matmul_is_deterministic_across_1_2_4_threads() {
    let mut rng = SeedStream::new(0xD17);
    let a = rng.uniform_matrix(73, 129, 1.0);
    let b = rng.uniform_matrix(129, 37, 1.0);
    let reference = naive::matmul(&a, &b);
    let _guard = KNOB_LOCK.lock().unwrap();
    let old_threshold = opt_tensor::parallel_flop_threshold();
    set_parallel_flop_threshold(0);
    for threads in [1usize, 2, 4] {
        opt_tensor::set_kernel_threads(threads);
        let got = a.matmul(&b);
        assert_eq!(reference.shape(), got.shape());
        for (x, y) in reference.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads diverged");
        }
    }
    set_kernel_threads(1);
    set_parallel_flop_threshold(old_threshold);
}
