//! The kernel determinism contract, enforced end to end: every dispatchable
//! kernel path (scalar fallback, AVX2+FMA, NEON) must be **bit-identical**
//! to an in-test oracle that spells out the contract directly — a fused
//! `mul_add` accumulation chain per output element for GEMM, and the fixed
//! 8-lane split reduction for Gram–Schmidt dots — across odd shapes (1xN,
//! Nx1, non-multiple-of-tile, empty) and worker-thread counts (1/2/4).
//!
//! The oracle is deliberately *not* [`opt_tensor::naive`]: the naive
//! kernels keep the seed's unfused `a*b + acc` order as a benchmark
//! baseline and agree with the dispatched kernels only to rounding, not to
//! the bit. The contract the dispatcher must honor is the FMA-chain /
//! lane-split order defined here.
//!
//! Every test loops over [`opt_tensor::available_arches`] — exactly the
//! set the dispatcher could pick on this host — so CI's
//! `kernel-equivalence` step fails if detection ever selects a path whose
//! oracle comparison didn't run ([`detected_arch_is_covered`] pins the
//! subset property explicitly).
//!
//! This binary owns the process-global kernel knobs
//! ([`set_kernel_threads`], [`set_parallel_flop_threshold`],
//! [`set_kernel_arch`]); integration tests are separate processes, so
//! tweaking them here cannot perturb the rest of the suite. Within this
//! binary the knobs only change *which* code path runs — never the bits —
//! which is exactly the property under test.

use opt_tensor::{
    available_arches, detected_arch, kernel_arch, orthonormalize_columns, set_kernel_arch,
    set_kernel_threads, set_parallel_flop_threshold, Matrix, SeedStream,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn assert_bits_equal(label: &str, reference: &Matrix, got: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(reference.shape(), got.shape(), "{}: shape", label);
    for (i, (x, y)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} differs ({} vs {})",
            label,
            i,
            x,
            y
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The contract, spelled out: oracles independent of the crate's kernels
// ---------------------------------------------------------------------------

/// `out[i][j] = fma-chain over ascending k of a[i][k] * b[k][j]`.
fn oracle_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a[(i, kk)].mul_add(b[(kk, j)], acc);
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// `out[i][j] = fma-chain over ascending k of a[k][i] * b[k][j]` (Aᵀ·B).
fn oracle_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a[(kk, i)].mul_add(b[(kk, j)], acc);
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// `out[i][j] = fma-chain over ascending k of a[i][k] * b[j][k]` (A·Bᵀ).
fn oracle_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a[(i, kk)].mul_add(b[(j, kk)], acc);
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// The lane-split dot contract: element `i` accumulates into lane `i % 8`
/// via `mul_add` (full 8-element chunks round-robin, the tail fills lanes
/// `0..rem`), then lanes reduce sequentially left to right.
fn oracle_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        for l in 0..8 {
            lanes[l] = a[c * 8 + l].mul_add(b[c * 8 + l], lanes[l]);
        }
    }
    for (l, i) in (chunks * 8..a.len()).enumerate() {
        lanes[l] = a[i].mul_add(b[i], lanes[l]);
    }
    let mut acc = lanes[0];
    for &l in &lanes[1..] {
        acc += l;
    }
    acc
}

/// Modified Gram–Schmidt exactly as `orthonormalize_columns` performs it —
/// transposed panel, two projection passes, degenerate-column unit-basis
/// replacement — but with every dot reduction going through the
/// independent [`oracle_dot`] emulation of the lane-split contract.
fn oracle_orthonormalize(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    const EPS: f32 = 1e-5;
    if rows == 0 || cols == 0 {
        return;
    }
    let mut panel = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            panel[c * rows + r] = m[(r, c)];
        }
    }
    for c in 0..cols {
        let (done, rest) = panel.split_at_mut(c * rows);
        let cur = &mut rest[..rows];
        for _pass in 0..2 {
            for prev in 0..c {
                let prev_col = &done[prev * rows..(prev + 1) * rows];
                let d = oracle_dot(cur, prev_col);
                for (x, &p) in cur.iter_mut().zip(prev_col) {
                    *x -= d * p;
                }
            }
        }
        let norm = oracle_dot(cur, cur).sqrt();
        if norm > EPS {
            let inv = 1.0 / norm;
            for x in cur.iter_mut() {
                *x *= inv;
            }
        } else {
            'candidates: for t in 0..rows {
                let pick = (c + t) % rows;
                for (r, x) in cur.iter_mut().enumerate() {
                    *x = if r == pick { 1.0 } else { 0.0 };
                }
                for prev in 0..c {
                    let prev_col = &done[prev * rows..(prev + 1) * rows];
                    let d = oracle_dot(cur, prev_col);
                    for (x, &p) in cur.iter_mut().zip(prev_col) {
                        *x -= d * p;
                    }
                }
                let ns = oracle_dot(cur, cur);
                if ns.sqrt() > 0.5 {
                    let inv = 1.0 / ns.sqrt();
                    for x in cur.iter_mut() {
                        *x *= inv;
                    }
                    break 'candidates;
                }
            }
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            m[(r, c)] = panel[c * rows + r];
        }
    }
}

/// Odd shape distribution: tile multiples, off-by-one, degenerate 1xN /
/// Nx1, and empty dimensions.
fn dim() -> impl Strategy<Value = usize> {
    (0usize..5).prop_map(|sel| match sel {
        0 => 1,
        1 => 4,
        2 => 17, // crosses both the MR (8) and NR (8) tile boundaries
        3 => 33,
        _ => 0, // empty
    })
}

/// Serializes every section that sets the process-global kernel knobs:
/// the libtest harness runs this binary's tests on parallel threads, and
/// without the lock a sibling test could retarget the thread count or arch
/// between a `set_kernel_*` and the product it is meant to cover — the
/// results would still be bit-identical (that is the contract), but the
/// labeled per-arch / per-thread-count coverage would be fiction.
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `got` on every kernel path this host can execute, each under 1, 2,
/// and 4 worker threads (parallel threshold forced to zero so even tiny
/// shapes exercise the pool), and checks every result bit-for-bit against
/// `reference`.
fn check_all_paths(
    label: &str,
    reference: &Matrix,
    mut got: impl FnMut() -> Matrix,
) -> Result<(), TestCaseError> {
    let _guard = KNOB_LOCK.lock().unwrap();
    let old_threshold = opt_tensor::parallel_flop_threshold();
    set_parallel_flop_threshold(0);
    for arch in available_arches() {
        set_kernel_arch(arch);
        for threads in [1usize, 2, 4] {
            set_kernel_threads(threads);
            let result = got();
            assert_bits_equal(
                &format!("{label} [{} @{threads}thr]", arch.name()),
                reference,
                &result,
            )?;
        }
    }
    set_kernel_arch(detected_arch());
    set_kernel_threads(1);
    set_parallel_flop_threshold(old_threshold);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_fma_chain_oracle_on_every_arch(m in dim(), n in dim(), k in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(m, k, 100.0);
        let b = rng.uniform_matrix(k, n, 100.0);
        let reference = oracle_matmul(&a, &b);
        check_all_paths("matmul", &reference, || a.matmul(&b))?;
    }

    #[test]
    fn t_matmul_matches_fma_chain_oracle_on_every_arch(m in dim(), n in dim(), k in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(k, m, 100.0);
        let b = rng.uniform_matrix(k, n, 100.0);
        let reference = oracle_t_matmul(&a, &b);
        check_all_paths("t_matmul", &reference, || a.t_matmul(&b))?;
    }

    #[test]
    fn matmul_t_matches_fma_chain_oracle_on_every_arch(m in dim(), n in dim(), k in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(m, k, 100.0);
        let b = rng.uniform_matrix(n, k, 100.0);
        let reference = oracle_matmul_t(&a, &b);
        check_all_paths("matmul_t", &reference, || a.matmul_t(&b))?;
    }

    #[test]
    fn tall_skinny_products_are_bit_identical(rows in 1usize..400, rank in 1usize..10, seed in 0u64..1000) {
        // The PowerSGD shapes: a big gradient against a skinny factor,
        // driving the swapped/skinny kernel paths.
        let mut rng = SeedStream::new(seed);
        let grad = rng.uniform_matrix(rows, rows / 2 + 1, 1.0);
        let q = rng.uniform_matrix(rows / 2 + 1, rank, 1.0);
        let p_ref = oracle_matmul(&grad, &q);
        check_all_paths("powersgd_p", &p_ref, || grad.matmul(&q))?;
        let q_ref = oracle_t_matmul(&grad, &p_ref);
        check_all_paths("powersgd_q", &q_ref, || grad.t_matmul(&p_ref))?;
    }

    #[test]
    fn orthonormalize_matches_lane_split_oracle_on_every_arch(rows in dim(), cols in dim(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let m0 = rng.uniform_matrix(rows, cols, 1.0);
        let mut reference = m0.clone();
        oracle_orthonormalize(&mut reference);
        let _guard = KNOB_LOCK.lock().unwrap();
        for arch in available_arches() {
            set_kernel_arch(arch);
            let mut got = m0.clone();
            orthonormalize_columns(&mut got);
            assert_bits_equal(&format!("orthonormalize [{}]", arch.name()), &reference, &got)?;
        }
        set_kernel_arch(detected_arch());
    }

    #[test]
    fn orthonormalize_handles_degenerate_columns_identically(rows in 1usize..20, seed in 0u64..500) {
        // Duplicated / zero columns force the unit-basis replacement
        // branch; it must stay bit-identical on every arch too.
        let mut rng = SeedStream::new(seed);
        let base = rng.uniform_matrix(rows, 1, 1.0);
        let mut m0 = Matrix::zeros(rows, 3);
        for r in 0..rows {
            m0[(r, 0)] = base[(r, 0)];
            m0[(r, 1)] = 2.0 * base[(r, 0)]; // linearly dependent
            // column 2 stays all-zero
        }
        let mut reference = m0.clone();
        oracle_orthonormalize(&mut reference);
        let _guard = KNOB_LOCK.lock().unwrap();
        for arch in available_arches() {
            set_kernel_arch(arch);
            let mut got = m0.clone();
            orthonormalize_columns(&mut got);
            assert_bits_equal(
                &format!("orthonormalize-degenerate [{}]", arch.name()),
                &reference,
                &got,
            )?;
        }
        set_kernel_arch(detected_arch());
    }

    #[test]
    fn into_variants_reuse_buffers_and_match(seed in 0u64..500) {
        // *_into must equal the allocating variants even when the output
        // buffer starts with a stale shape and stale contents.
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(13, 9, 1.0);
        let b = rng.uniform_matrix(9, 21, 1.0);
        let mut out = rng.uniform_matrix(3, 2, 1.0); // wrong shape, junk data
        a.matmul_into(&b, &mut out);
        assert_bits_equal("matmul_into", &a.matmul(&b), &out)?;
        let c = rng.uniform_matrix(13, 21, 1.0);
        a.t_matmul_into(&c, &mut out);
        assert_bits_equal("t_matmul_into", &a.t_matmul(&c), &out)?;
        let d = rng.uniform_matrix(4, 9, 1.0);
        a.matmul_t_into(&d, &mut out);
        assert_bits_equal("matmul_t_into", &a.matmul_t(&d), &out)?;
    }
}

/// The CI `kernel-equivalence` guarantee: the path the dispatcher resolves
/// to (detection or `OPT_KERNEL_ARCH` override) must be in the set every
/// equivalence test above iterated — otherwise a run could dispatch to a
/// kernel whose oracle comparison never executed on this machine.
#[test]
fn detected_arch_is_covered() {
    let arches = available_arches();
    assert!(
        arches.contains(&kernel_arch()),
        "dispatch resolved to {} but the oracle only covered {:?}",
        kernel_arch().name(),
        arches.iter().map(|a| a.name()).collect::<Vec<_>>()
    );
    assert!(arches.contains(&detected_arch()));
}

/// The headline determinism property as a plain test: one large-ish
/// matmul, bit-compared across every arch × 1/2/4 threads against the
/// FMA-chain oracle — plus a rounding-level sanity check against the
/// unfused [`opt_tensor::naive`] baseline (which is *not* bit-identical:
/// fusing changes rounding, not math).
#[test]
fn matmul_is_deterministic_across_arches_and_threads() {
    let mut rng = SeedStream::new(0xD17);
    let a = rng.uniform_matrix(73, 129, 1.0);
    let b = rng.uniform_matrix(129, 37, 1.0);
    let reference = oracle_matmul(&a, &b);
    let _guard = KNOB_LOCK.lock().unwrap();
    let old_threshold = opt_tensor::parallel_flop_threshold();
    set_parallel_flop_threshold(0);
    for arch in available_arches() {
        set_kernel_arch(arch);
        for threads in [1usize, 2, 4] {
            set_kernel_threads(threads);
            let got = a.matmul(&b);
            assert_eq!(reference.shape(), got.shape());
            for (x, y) in reference.as_slice().iter().zip(got.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} @ {threads} threads diverged",
                    arch.name()
                );
            }
        }
    }
    set_kernel_arch(detected_arch());
    set_kernel_threads(1);
    set_parallel_flop_threshold(old_threshold);
    let unfused = opt_tensor::naive::matmul(&a, &b);
    let rel = opt_tensor::relative_error(&reference, &unfused);
    assert!(
        rel < 1e-5,
        "fused vs unfused drifted beyond rounding: {rel}"
    );
}
