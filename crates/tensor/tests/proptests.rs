//! Property-based tests for the tensor crate's algebraic invariants and
//! the sparse-kernel equivalence contract.

use opt_tensor::{
    cosine_similarity, orthonormalize_columns, Matrix, Persist, SeedStream, SparseMatrix,
};
use proptest::prelude::*;

/// Strategy producing a matrix with the given shape and bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Strategy for a (rows, cols) shape in a small range.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8, 1usize..8)
}

proptest! {
    #[test]
    fn add_is_commutative((r, c) in shape(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(r, c, 10.0);
        let b = rng.uniform_matrix(r, c, 10.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn transpose_is_involutive((r, c) in shape(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(r, c, 10.0);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(3, 4, 2.0);
        let b = rng.uniform_matrix(4, 2, 2.0);
        let c = rng.uniform_matrix(4, 2, 2.0);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        let err = lhs.sub(&rhs).max_abs();
        prop_assert!(err < 1e-3, "distributivity violated: {err}");
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..500) {
        // (A B)^T == B^T A^T
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(3, 5, 2.0);
        let b = rng.uniform_matrix(5, 2, 2.0);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.sub(&rhs).max_abs() < 1e-3);
    }

    #[test]
    fn t_matmul_and_matmul_t_agree_with_naive(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(4, 3, 2.0);
        let b = rng.uniform_matrix(4, 2, 2.0);
        prop_assert!(a.t_matmul(&b).sub(&a.transpose().matmul(&b)).max_abs() < 1e-4);
        let c = rng.uniform_matrix(5, 3, 2.0);
        let at = rng.uniform_matrix(2, 3, 2.0);
        prop_assert!(at.matmul_t(&c).sub(&at.matmul(&c.transpose())).max_abs() < 1e-4);
    }

    #[test]
    fn scale_is_linear_in_sum((r, c) in shape(), alpha in -10.0f32..10.0, seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(r, c, 5.0);
        let scaled_sum = a.scale(alpha).sum();
        prop_assert!((scaled_sum - alpha * a.sum()).abs() < 1e-2 * (1.0 + a.sum().abs() * alpha.abs()));
    }

    #[test]
    fn orthonormalize_produces_orthonormal_columns(seed in 0u64..300) {
        let mut rng = SeedStream::new(seed);
        let mut m = rng.uniform_matrix(16, 4, 1.0);
        orthonormalize_columns(&mut m);
        let gram = m.t_matmul(&m);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((gram[(i, j)] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn cosine_similarity_is_bounded(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(2, 6, 3.0);
        let b = rng.uniform_matrix(2, 6, 3.0);
        let cs = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&cs));
    }

    #[test]
    fn add_has_zero_identity_and_sub_inverts(m in matrix(5, 3)) {
        let zero = Matrix::zeros(5, 3);
        prop_assert_eq!(m.add(&zero), m.clone());
        prop_assert!(m.sub(&m).max_abs() == 0.0);
    }

    #[test]
    fn vcat_then_slice_roundtrip(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(3, 4, 1.0);
        let b = rng.uniform_matrix(2, 4, 1.0);
        let cat = a.vcat(&b);
        prop_assert_eq!(cat.slice_rows(0, 3), a);
        prop_assert_eq!(cat.slice_rows(3, 5), b);
    }
}

// ---------------------------------------------------------------------------
// Sparse fast-path equivalence (the densify-then-dense reference)
// ---------------------------------------------------------------------------

/// The densities the sparse crossover knob ranges over: from a deep top-k
/// payload (0.1 %) through the crossover region up to fully dense.
const SPARSE_DENSITIES: [f32; 5] = [0.001, 0.01, 0.1, 0.5, 1.0];

/// A seeded random sparse matrix at approximately the requested density
/// (at least one stored entry): a deterministic shuffle picks the flat
/// positions, ascending, matching the top-k wire invariants.
fn random_sparse(rows: usize, cols: usize, density: f32, seed: u64) -> SparseMatrix {
    let total = rows * cols;
    let k = ((density * total as f32).ceil() as usize).clamp(1, total);
    let mut rng = SeedStream::new(seed);
    let mut flats: Vec<u32> = (0..total as u32).collect();
    // Partial Fisher–Yates over the first k slots.
    for i in 0..k {
        let j = i + (rng.uniform(1.0).abs() * (total - i) as f32) as usize % (total - i);
        flats.swap(i, j);
    }
    let mut picked = flats[..k].to_vec();
    picked.sort_unstable();
    let values: Vec<f32> = picked.iter().map(|_| rng.uniform(1.0)).collect();
    SparseMatrix::from_flat_payload(rows, cols, &picked, &values)
}

fn assert_bits(label: &str, reference: &Matrix, got: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(reference.shape(), got.shape(), "{}: shape", label);
    for (i, (x, y)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: element {}", label, i);
    }
    Ok(())
}

use proptest::test_runner::TestCaseError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spmm_is_bit_identical_to_densify_then_dense(seed in 0u64..500) {
        let (rows, cols, n) = (40, 50, 9);
        let mut rng = SeedStream::new(seed ^ 0xABCD);
        let b = rng.uniform_matrix(cols, n, 1.0);
        for &density in &SPARSE_DENSITIES {
            let s = random_sparse(rows, cols, density, seed);
            let reference = s.densify().matmul(&b);
            let got = s.spmm(&b);
            assert_bits(&format!("spmm @density {density}"), &reference, &got)?;
        }
    }

    #[test]
    fn sparse_subtract_is_bit_identical_to_dense_subtract(seed in 0u64..500) {
        let (rows, cols) = (40, 50);
        let mut rng = SeedStream::new(seed ^ 0x1234);
        let base = rng.uniform_matrix(rows, cols, 1.0);
        for &density in &SPARSE_DENSITIES {
            let s = random_sparse(rows, cols, density, seed);
            let mut sparse_path = base.clone();
            s.sub_from(&mut sparse_path);
            let mut dense_path = base.clone();
            dense_path.sub_assign(&s.densify());
            assert_bits(&format!("sub @density {density}"), &dense_path, &sparse_path)?;
        }
    }

    #[test]
    fn sparse_matrix_persist_roundtrips(seed in 0u64..500, density_sel in 0usize..5) {
        let s = random_sparse(17, 23, SPARSE_DENSITIES[density_sel], seed);
        let bytes = s.to_bytes();
        prop_assert_eq!(bytes.len(), s.persist_len());
        let back = SparseMatrix::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &s);
        // The round-trip must preserve value bits exactly, densified too.
        assert_bits("persist-densify", &s.densify(), &back.densify())?;
    }
}
