//! Property-based tests for the tensor crate's algebraic invariants.

use opt_tensor::{cosine_similarity, orthonormalize_columns, Matrix, SeedStream};
use proptest::prelude::*;

/// Strategy producing a matrix with the given shape and bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Strategy for a (rows, cols) shape in a small range.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8, 1usize..8)
}

proptest! {
    #[test]
    fn add_is_commutative((r, c) in shape(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(r, c, 10.0);
        let b = rng.uniform_matrix(r, c, 10.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn transpose_is_involutive((r, c) in shape(), seed in 0u64..1000) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(r, c, 10.0);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(3, 4, 2.0);
        let b = rng.uniform_matrix(4, 2, 2.0);
        let c = rng.uniform_matrix(4, 2, 2.0);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        let err = lhs.sub(&rhs).max_abs();
        prop_assert!(err < 1e-3, "distributivity violated: {err}");
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..500) {
        // (A B)^T == B^T A^T
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(3, 5, 2.0);
        let b = rng.uniform_matrix(5, 2, 2.0);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.sub(&rhs).max_abs() < 1e-3);
    }

    #[test]
    fn t_matmul_and_matmul_t_agree_with_naive(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(4, 3, 2.0);
        let b = rng.uniform_matrix(4, 2, 2.0);
        prop_assert!(a.t_matmul(&b).sub(&a.transpose().matmul(&b)).max_abs() < 1e-4);
        let c = rng.uniform_matrix(5, 3, 2.0);
        let at = rng.uniform_matrix(2, 3, 2.0);
        prop_assert!(at.matmul_t(&c).sub(&at.matmul(&c.transpose())).max_abs() < 1e-4);
    }

    #[test]
    fn scale_is_linear_in_sum((r, c) in shape(), alpha in -10.0f32..10.0, seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(r, c, 5.0);
        let scaled_sum = a.scale(alpha).sum();
        prop_assert!((scaled_sum - alpha * a.sum()).abs() < 1e-2 * (1.0 + a.sum().abs() * alpha.abs()));
    }

    #[test]
    fn orthonormalize_produces_orthonormal_columns(seed in 0u64..300) {
        let mut rng = SeedStream::new(seed);
        let mut m = rng.uniform_matrix(16, 4, 1.0);
        orthonormalize_columns(&mut m);
        let gram = m.t_matmul(&m);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((gram[(i, j)] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn cosine_similarity_is_bounded(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(2, 6, 3.0);
        let b = rng.uniform_matrix(2, 6, 3.0);
        let cs = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&cs));
    }

    #[test]
    fn add_has_zero_identity_and_sub_inverts(m in matrix(5, 3)) {
        let zero = Matrix::zeros(5, 3);
        prop_assert_eq!(m.add(&zero), m.clone());
        prop_assert!(m.sub(&m).max_abs() == 0.0);
    }

    #[test]
    fn vcat_then_slice_roundtrip(seed in 0u64..500) {
        let mut rng = SeedStream::new(seed);
        let a = rng.uniform_matrix(3, 4, 1.0);
        let b = rng.uniform_matrix(2, 4, 1.0);
        let cat = a.vcat(&b);
        prop_assert_eq!(cat.slice_rows(0, 3), a);
        prop_assert_eq!(cat.slice_rows(3, 5), b);
    }
}
