//! Trace analysis: pipeline-bubble fraction, comm/compute overlap, and
//! top-k slowest spans.
//!
//! The bubble fraction is computed by a **structural replay**: the
//! recorded forward/backward slots of each data-parallel replica are
//! re-scheduled with unit cost per slot under the real pipeline
//! dependencies (a forward needs the previous stage's forward of the same
//! microbatch, a backward needs the next stage's backward, stages execute
//! their recorded order serially). Because the replay only reads
//! *structural* span fields, the bubble numbers are bit-deterministic
//! across reruns, kernel-thread counts, and transport backends — and for
//! an ideal 1F1B trace they reduce exactly to
//! `opt_schedule::bubble_fraction`. The overlap ratio, by contrast, is a
//! wall-clock measurement and is only as stable as the machine it ran on.

use crate::chrome::Trace;
use crate::record::{SpanKind, TraceBuffer, NO_MICRO};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rank analysis results.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// Global rank.
    pub rank: u32,
    /// Pipeline stage of the rank.
    pub stage: u32,
    /// Data-parallel index of the rank.
    pub dp: u32,
    /// Number of compute spans (forward/backward slots, optimizer steps).
    pub compute_spans: usize,
    /// Wall-clock nanoseconds inside compute spans.
    pub compute_ns: u64,
    /// Wall-clock nanoseconds inside communication spans (may overlap
    /// compute spans that contain them).
    pub comm_ns: u64,
    /// Structural pipeline-bubble fraction (deterministic; see module
    /// docs). 0 when the trace holds no training slots for this rank.
    pub bubble_fraction: f64,
    /// Fraction of this rank's communication wall-time during which some
    /// *other* rank was inside pure compute (wall-clock; not
    /// deterministic).
    pub overlap_ratio: f64,
}

/// One entry of the top-k slowest span list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSpan {
    /// Rank the span was recorded on.
    pub rank: u32,
    /// Span kind.
    pub kind: SpanKind,
    /// Iteration of the span.
    pub iter: u64,
    /// Microbatch, or [`NO_MICRO`].
    pub micro: u32,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// The full analysis of a merged trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-rank summaries, in rank order.
    pub ranks: Vec<RankSummary>,
    /// The `top_k` slowest non-iteration spans, slowest first.
    pub top_slowest: Vec<SlowSpan>,
}

/// Analyzes a merged trace; `top_k` bounds the slow-span list.
pub fn analyze(trace: &Trace, top_k: usize) -> TraceReport {
    let bubbles = bubble_fractions(trace);
    let compute_iv: Vec<Vec<(u64, u64)>> = trace
        .buffers
        .iter()
        .map(|b| {
            let compute = union(spans_of(b, SpanKind::is_compute));
            let comm = union(spans_of(b, SpanKind::is_comm));
            subtract(&compute, &comm)
        })
        .collect();

    let mut ranks = Vec::with_capacity(trace.buffers.len());
    for (i, b) in trace.buffers.iter().enumerate() {
        let comm = union(spans_of(b, SpanKind::is_comm));
        let comm_total = total_len(&comm);
        let others: Vec<(u64, u64)> = union(
            compute_iv
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .flat_map(|(_, iv)| iv.iter().copied())
                .collect(),
        );
        let overlap_ratio = if comm_total == 0 {
            0.0
        } else {
            intersect_len(&comm, &others) as f64 / comm_total as f64
        };
        ranks.push(RankSummary {
            rank: b.rank,
            stage: b.stage,
            dp: b.dp,
            compute_spans: b.spans.iter().filter(|s| s.kind.is_compute()).count(),
            compute_ns: b
                .spans
                .iter()
                .filter(|s| s.kind.is_compute())
                .map(|s| s.dur_ns)
                .sum(),
            comm_ns: b
                .spans
                .iter()
                .filter(|s| s.kind.is_comm())
                .map(|s| s.dur_ns)
                .sum(),
            bubble_fraction: bubbles.get(&b.rank).copied().unwrap_or(0.0),
            overlap_ratio,
        });
    }

    let mut slow: Vec<SlowSpan> = trace
        .buffers
        .iter()
        .flat_map(|b| {
            b.spans
                .iter()
                .filter(|s| s.kind != SpanKind::Iteration)
                .map(|s| (b.rank, s))
        })
        .map(|(rank, s)| SlowSpan {
            rank,
            kind: s.kind,
            iter: s.iter,
            micro: s.micro,
            dur_ns: s.dur_ns,
        })
        .collect();
    slow.sort_by(|a, b| {
        b.dur_ns
            .cmp(&a.dur_ns)
            .then(a.rank.cmp(&b.rank))
            .then(a.iter.cmp(&b.iter))
            .then(a.micro.cmp(&b.micro))
    });
    slow.truncate(top_k);

    TraceReport {
        ranks,
        top_slowest: slow,
    }
}

/// Renders the report as plain text.
pub fn render(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str("rank  stage  dp  compute  compute_ms  comm_ms  bubble  overlap\n");
    for r in &report.ranks {
        let _ = writeln!(
            out,
            "{:<4}  {:<5}  {:<2}  {:<7}  {:<10.3}  {:<7.3}  {:<6.4}  {:.4}",
            r.rank,
            r.stage,
            r.dp,
            r.compute_spans,
            r.compute_ns as f64 / 1e6,
            r.comm_ns as f64 / 1e6,
            r.bubble_fraction,
            r.overlap_ratio,
        );
    }
    if !report.top_slowest.is_empty() {
        let _ = writeln!(out, "top {} slowest spans:", report.top_slowest.len());
        for s in &report.top_slowest {
            let micro = if s.micro == NO_MICRO {
                "-".to_string()
            } else {
                s.micro.to_string()
            };
            let _ = writeln!(
                out,
                "  rank {:<3} {:<14} iter {:<4} micro {:<4} {:.3} ms",
                s.rank,
                s.kind.name(),
                s.iter,
                micro,
                s.dur_ns as f64 / 1e6,
            );
        }
    }
    out
}

fn spans_of(b: &TraceBuffer, pred: impl Fn(SpanKind) -> bool) -> Vec<(u64, u64)> {
    b.spans
        .iter()
        .filter(|s| pred(s.kind))
        .map(|s| (s.start_ns, s.start_ns + s.dur_ns))
        .collect()
}

/// Merges intervals into a sorted, disjoint union.
fn union(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|&(a, b)| b > a);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// `a \ b` for sorted disjoint interval lists.
fn subtract(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut bi = 0;
    for &(mut lo, hi) in a {
        while lo < hi {
            while bi < b.len() && b[bi].1 <= lo {
                bi += 1;
            }
            match b.get(bi) {
                Some(&(blo, bhi)) if blo < hi => {
                    if lo < blo {
                        out.push((lo, blo));
                    }
                    lo = bhi.max(lo);
                }
                _ => {
                    out.push((lo, hi));
                    lo = hi;
                }
            }
        }
    }
    out
}

/// Total covered length of the intersection of two sorted disjoint lists.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut len) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            len += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    len
}

fn total_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|&(a, b)| b - a).sum()
}

/// Structural bubble replay (see module docs). Returns rank → mean bubble
/// fraction over the iterations present in the trace.
fn bubble_fractions(trace: &Trace) -> BTreeMap<u32, f64> {
    // Group ranks by data-parallel replica; within a replica, by stage.
    let mut replicas: BTreeMap<u32, Vec<&TraceBuffer>> = BTreeMap::new();
    for b in &trace.buffers {
        replicas.entry(b.dp).or_default().push(b);
    }
    let mut out = BTreeMap::new();
    for bufs in replicas.values_mut() {
        bufs.sort_by_key(|b| b.stage);
        let iters: std::collections::BTreeSet<u64> = bufs
            .iter()
            .flat_map(|b| b.spans.iter())
            .filter(|s| matches!(s.kind, SpanKind::Forward | SpanKind::Backward))
            .map(|s| s.iter)
            .collect();
        let mut acc: Vec<(f64, u64)> = vec![(0.0, 0); bufs.len()];
        for &iter in &iters {
            // ops[s] = the slots stage s recorded for this iteration, in
            // execution order: (is_forward, micro).
            let ops: Vec<Vec<(bool, u32)>> = bufs
                .iter()
                .map(|b| {
                    b.spans
                        .iter()
                        .filter(|s| {
                            s.iter == iter
                                && s.micro != NO_MICRO
                                && matches!(s.kind, SpanKind::Forward | SpanKind::Backward)
                        })
                        .map(|s| (s.kind == SpanKind::Forward, s.micro))
                        .collect()
                })
                .collect();
            if let Some(per_stage) = replay(&ops) {
                for (s, bubble) in per_stage.into_iter().enumerate() {
                    acc[s].0 += bubble;
                    acc[s].1 += 1;
                }
            }
        }
        for (b, (sum, n)) in bufs.iter().zip(acc) {
            out.insert(b.rank, if n == 0 { 0.0 } else { sum / n as f64 });
        }
    }
    out
}

/// List-schedules one iteration's slots with unit cost per slot and the
/// 1F1B dependency structure; returns the per-stage bubble fraction
/// `(makespan - busy) / makespan`, or `None` when the recorded order is
/// not schedulable (a malformed trace).
fn replay(ops: &[Vec<(bool, u32)>]) -> Option<Vec<f64>> {
    let n_stages = ops.len();
    let mut f_fin: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut b_fin: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut next = vec![0usize; n_stages];
    let mut stage_time = vec![0u64; n_stages];
    loop {
        let mut progressed = false;
        for s in 0..n_stages {
            while next[s] < ops[s].len() {
                let (is_fwd, micro) = ops[s][next[s]];
                let dep = if is_fwd {
                    if s == 0 {
                        Some(0)
                    } else {
                        f_fin.get(&(s - 1, micro)).copied()
                    }
                } else if s + 1 == n_stages {
                    f_fin.get(&(s, micro)).copied()
                } else {
                    b_fin.get(&(s + 1, micro)).copied()
                };
                let Some(dep) = dep else { break };
                let fin = stage_time[s].max(dep) + 1;
                stage_time[s] = fin;
                if is_fwd {
                    f_fin.insert((s, micro), fin);
                } else {
                    b_fin.insert((s, micro), fin);
                }
                next[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    if next.iter().zip(ops).any(|(&n, o)| n < o.len()) {
        return None;
    }
    let makespan = stage_time.iter().copied().max().unwrap_or(0);
    if makespan == 0 {
        return None;
    }
    Some(
        ops.iter()
            .map(|o| (makespan - o.len() as u64) as f64 / makespan as f64)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SpanRecord, NO_PARENT};

    /// Builds the per-stage 1F1B op order for `n_stages`/`n_micro`
    /// (warmup forwards, steady 1F1B, cooldown backwards), as
    /// `opt_schedule::one_f_one_b` would emit it.
    fn one_f_one_b_ops(n_stages: usize, n_micro: u32, stage: usize) -> Vec<(bool, u32)> {
        let warmup = (n_stages - stage).min(n_micro as usize) as u32;
        let mut ops = Vec::new();
        for m in 0..warmup {
            ops.push((true, m));
        }
        let (mut f, mut b) = (warmup, 0u32);
        while b < n_micro {
            ops.push((false, b));
            b += 1;
            if f < n_micro {
                ops.push((true, f));
                f += 1;
            }
        }
        ops
    }

    fn slot_trace(n_stages: usize, n_micro: u32, iters: u64) -> Trace {
        let buffers = (0..n_stages)
            .map(|stage| {
                let mut spans = Vec::new();
                let mut seq = 0u64;
                for iter in 0..iters {
                    for (is_fwd, micro) in one_f_one_b_ops(n_stages, n_micro, stage) {
                        spans.push(SpanRecord {
                            seq,
                            parent: NO_PARENT,
                            kind: if is_fwd {
                                SpanKind::Forward
                            } else {
                                SpanKind::Backward
                            },
                            iter,
                            micro,
                            bytes: 0,
                            flags: 0,
                            start_ns: seq * 10,
                            dur_ns: 5,
                        });
                        seq += 1;
                    }
                }
                TraceBuffer {
                    rank: stage as u32,
                    stage: stage as u32,
                    dp: 0,
                    spans,
                }
            })
            .collect();
        Trace::merge(buffers)
    }

    #[test]
    fn ideal_1f1b_bubble_matches_closed_form() {
        for (s, m) in [(1usize, 4u32), (2, 4), (2, 8), (4, 8)] {
            let trace = slot_trace(s, m, 2);
            let report = analyze(&trace, 0);
            let expect = (s as f64 - 1.0) / (m as f64 + s as f64 - 1.0);
            for r in &report.ranks {
                assert!(
                    (r.bubble_fraction - expect).abs() < 1e-12,
                    "pp={s} m={m} rank {}: got {} want {expect}",
                    r.rank,
                    r.bubble_fraction
                );
            }
        }
    }

    #[test]
    fn interval_helpers() {
        assert_eq!(union(vec![(5, 8), (0, 3), (2, 4)]), vec![(0, 4), (5, 8)]);
        assert_eq!(
            subtract(&[(0, 10)], &[(2, 4), (6, 7)]),
            vec![(0, 2), (4, 6), (7, 10)]
        );
        assert_eq!(
            subtract(&[(0, 5), (6, 12)], &[(4, 8)]),
            vec![(0, 4), (8, 12)]
        );
        assert_eq!(intersect_len(&[(0, 5), (8, 12)], &[(3, 9)]), 2 + 1);
        assert_eq!(total_len(&[(0, 4), (5, 8)]), 7);
    }

    #[test]
    fn top_slowest_is_sorted_and_truncated() {
        let trace = slot_trace(2, 4, 1);
        let report = analyze(&trace, 3);
        assert_eq!(report.top_slowest.len(), 3);
        for pair in report.top_slowest.windows(2) {
            assert!(pair[0].dur_ns >= pair[1].dur_ns);
        }
    }

    #[test]
    fn overlap_counts_comm_against_other_ranks_compute() {
        // Rank 0: compute [0, 100). Rank 1: comm [50, 150).
        let buffers = vec![
            TraceBuffer {
                rank: 0,
                stage: 0,
                dp: 0,
                spans: vec![SpanRecord {
                    seq: 0,
                    parent: NO_PARENT,
                    kind: SpanKind::Forward,
                    iter: 0,
                    micro: 0,
                    bytes: 0,
                    flags: 0,
                    start_ns: 0,
                    dur_ns: 100,
                }],
            },
            TraceBuffer {
                rank: 1,
                stage: 1,
                dp: 0,
                spans: vec![SpanRecord {
                    seq: 0,
                    parent: NO_PARENT,
                    kind: SpanKind::Recv,
                    iter: 0,
                    micro: 0,
                    bytes: 64,
                    flags: 0,
                    start_ns: 50,
                    dur_ns: 100,
                }],
            },
        ];
        let report = analyze(&Trace::merge(buffers), 0);
        assert!((report.ranks[1].overlap_ratio - 0.5).abs() < 1e-12);
        assert_eq!(report.ranks[0].overlap_ratio, 0.0);
        assert_eq!(report.ranks[1].comm_ns, 100);
    }

    #[test]
    fn render_mentions_every_rank() {
        let trace = slot_trace(2, 2, 1);
        let text = render(&analyze(&trace, 2));
        assert!(text.contains("bubble"));
        assert!(text.contains("top 2 slowest"));
    }
}
