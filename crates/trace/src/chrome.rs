//! The merged multi-rank trace and its Chrome-trace (Perfetto) export.

use crate::record::{fnv1a64, SpanRecord, TraceBuffer, FNV_OFFSET, NO_MICRO};
use std::fmt::Write as _;

/// A whole run's trace: one [`TraceBuffer`] per rank, merged
/// deterministically (buffers by rank, spans by seq).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Per-rank buffers, sorted by rank.
    pub buffers: Vec<TraceBuffer>,
}

impl Trace {
    /// Merges per-rank buffers into one trace. Buffers are ordered by
    /// rank and each buffer's spans by `seq`, so the merge is a pure
    /// function of its inputs regardless of arrival order.
    pub fn merge(mut buffers: Vec<TraceBuffer>) -> Self {
        buffers.sort_by_key(|b| b.rank);
        for b in &mut buffers {
            b.spans.sort_by_key(|s| s.seq);
        }
        Trace { buffers }
    }

    /// Total spans across all ranks.
    pub fn span_count(&self) -> usize {
        self.buffers.iter().map(|b| b.spans.len()).sum()
    }

    /// Spans whose kind satisfies [`crate::SpanKind::is_compute`].
    pub fn compute_span_count(&self) -> usize {
        self.buffers
            .iter()
            .flat_map(|b| &b.spans)
            .filter(|s| s.kind.is_compute())
            .count()
    }

    /// A digest over every buffer's structural digest, in rank order.
    /// Identical structure (timestamps excluded) ⇒ identical digest.
    pub fn structural_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for b in &self.buffers {
            fnv1a64(&mut h, &b.structural_digest().to_le_bytes());
        }
        h
    }

    /// Renders the trace as Chrome-trace JSON (the format
    /// `chrome://tracing` and <https://ui.perfetto.dev> load directly):
    /// one process per rank, complete (`"X"`) events with microsecond
    /// timestamps relative to the earliest span in the trace, and the
    /// structural fields repeated under `args` so the analyzer can
    /// round-trip a trace through this export.
    ///
    /// One extra `"M"` metadata event named `kernel_paths` (pid 0)
    /// records the *exporting* process's nonzero
    /// [`opt_tensor::kernel_path_counts`] — which `{arch, dense|sparse}`
    /// kernel paths the run actually exercised. In a multi-process run
    /// the counters are per-process, so the event describes the process
    /// that merged and exported the trace.
    pub fn to_chrome_json(&self) -> String {
        let t0 = self
            .buffers
            .iter()
            .flat_map(|b| &b.spans)
            .map(|s| s.start_ns)
            .min()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
        let mut first = true;
        let push = |ev: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str("\n    ");
            out.push_str(&ev);
        };
        let mut path_args = String::new();
        for (arch, kind, count) in opt_tensor::kernel_path_counts() {
            if count > 0 {
                if !path_args.is_empty() {
                    path_args.push_str(", ");
                }
                let _ = write!(path_args, "\"{arch}/{kind}\": {count}");
            }
        }
        push(
            format!(
                "{{\"ph\": \"M\", \"name\": \"kernel_paths\", \"pid\": 0, \"tid\": 0, \
                 \"args\": {{{path_args}}}}}"
            ),
            &mut out,
            &mut first,
        );
        for b in &self.buffers {
            push(
                format!(
                    "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {}, \"tid\": 0, \
                     \"args\": {{\"name\": \"rank {} (stage {}, dp {})\"}}}}",
                    b.rank, b.rank, b.stage, b.dp
                ),
                &mut out,
                &mut first,
            );
            for s in &b.spans {
                push(span_event(b, s, t0), &mut out, &mut first);
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn span_event(b: &TraceBuffer, s: &SpanRecord, t0: u64) -> String {
    let ts = s.start_ns.saturating_sub(t0) as f64 / 1_000.0;
    let dur = s.dur_ns as f64 / 1_000.0;
    let mut ev = String::new();
    write!(
        ev,
        "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"ts\": {ts:.3}, \
         \"dur\": {dur:.3}, \"pid\": {}, \"tid\": 0, \"args\": {{\
         \"rank\": {}, \"stage\": {}, \"dp\": {}, \"seq\": {}, \"parent\": {}, \
         \"iter\": {}, \"micro\": {}, \"bytes\": {}, \"flags\": {}}}}}",
        s.kind.name(),
        s.kind.category(),
        b.rank,
        b.rank,
        b.stage,
        b.dp,
        s.seq,
        s.parent,
        s.iter,
        if s.micro == NO_MICRO {
            -1i64
        } else {
            i64::from(s.micro)
        },
        s.bytes,
        s.flags,
    )
    .expect("writing to a String cannot fail");
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SpanKind, NO_PARENT};

    fn buffer(rank: u32, seqs: &[u64]) -> TraceBuffer {
        TraceBuffer {
            rank,
            stage: rank % 2,
            dp: rank / 2,
            spans: seqs
                .iter()
                .map(|&seq| SpanRecord {
                    seq,
                    parent: NO_PARENT,
                    kind: SpanKind::Forward,
                    iter: 0,
                    micro: seq as u32,
                    bytes: 64,
                    flags: 0,
                    start_ns: 1_000_000 + seq * 10,
                    dur_ns: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let a = Trace::merge(vec![buffer(0, &[0, 1]), buffer(1, &[0])]);
        let b = Trace::merge(vec![buffer(1, &[0]), buffer(0, &[1, 0])]);
        assert_eq!(a, b);
        assert_eq!(a.structural_digest(), b.structural_digest());
        assert_eq!(a.span_count(), 3);
        assert_eq!(a.compute_span_count(), 3);
    }

    #[test]
    fn chrome_json_has_metadata_and_events() {
        let trace = Trace::merge(vec![buffer(0, &[0]), buffer(1, &[0])]);
        let json = trace.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("rank 1 (stage 1, dp 0)"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"forward\""));
        // Earliest span sits at ts 0.
        assert!(json.contains("\"ts\": 0.000"));
    }

    #[test]
    fn chrome_json_reports_exercised_kernel_paths() {
        // Drive at least one dense kernel through the dispatcher so the
        // exporting process has a nonzero counter to report.
        let a = opt_tensor::Matrix::full(3, 3, 1.0);
        let _ = a.matmul(&a);
        let json = Trace::merge(vec![buffer(0, &[0])]).to_chrome_json();
        assert!(json.contains("\"name\": \"kernel_paths\""));
        let arch = opt_tensor::kernel_arch().name();
        assert!(
            json.contains(&format!("\"{arch}/dense\":")),
            "kernel_paths event missing {arch}/dense in {json}"
        );
    }
}
