//! `opt-trace` — deterministic span tracing for the Optimus-CC
//! reproduction.
//!
//! The trainer, schedule, compressors, and transports are instrumented
//! with spans whose **structure** (kinds, nesting, byte counts, ordering)
//! is a pure function of the training configuration — the same contract
//! the numerics already obey. Wall-clock timestamps ride along but are
//! excluded from every determinism claim and digest.
//!
//! The pieces:
//!
//! * [`TraceMode`] — the `OPT_TRACE=off|spans|full` knob. `off` (default)
//!   records nothing and costs one thread-local read per instrumentation
//!   point; `spans` records the deterministic tree; `full` adds
//!   backend-dependent per-lane transport latency spans.
//! * [`install`] / [`begin`] / [`begin_full`] / [`take_buffer`] — the
//!   lock-free thread-local recorder each worker thread owns.
//! * [`TraceBuffer`] — one rank's spans, `Persist`-coded so multi-process
//!   workers can ship them to the coordinator over the transport.
//! * [`Trace`] — the merged run trace: [`Trace::merge`] is deterministic
//!   by (rank, seq), [`Trace::to_chrome_json`] exports Chrome-trace JSON
//!   that <https://ui.perfetto.dev> loads directly.
//! * [`analyze`] / [`render`] — per-rank pipeline-bubble fraction (a
//!   structural replay that reduces to `opt_schedule::bubble_fraction`
//!   on ideal 1F1B traces), comm/compute overlap ratio, and the top-k
//!   slowest spans.

mod analyze;
mod chrome;
mod mode;
mod record;
mod tracer;

pub use analyze::{analyze, render, RankSummary, SlowSpan, TraceReport};
pub use chrome::Trace;
pub use mode::{TraceMode, ENV_TRACE};
pub use record::{
    SpanKind, SpanRecord, TraceBuffer, FLAG_EPILOGUE, FLAG_SPARSE, NO_MICRO, NO_PARENT,
};
pub use tracer::{begin, begin_full, install, take_buffer, thread_mode, SpanGuard};

#[cfg(test)]
mod proptests {
    use super::*;
    use opt_tensor::Persist;
    use proptest::prelude::*;

    fn arb_span() -> impl Strategy<Value = SpanRecord> {
        (
            (0u64..u64::MAX, 0u64..u64::MAX, 0u8..11, 0u64..u64::MAX),
            (0u32..u32::MAX, 0u64..u64::MAX, 0u8..2),
            (0u64..u64::MAX, 0u64..u64::MAX),
        )
            .prop_map(
                |((seq, parent, kind, iter), (micro, bytes, flags), (start_ns, dur_ns))| {
                    SpanRecord {
                        seq,
                        parent,
                        kind: SpanKind::from_code(kind).unwrap(),
                        iter,
                        micro,
                        bytes,
                        flags,
                        start_ns,
                        dur_ns,
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn trace_buffer_persist_roundtrips(
            rank in 0u32..u32::MAX,
            stage in 0u32..64,
            dp in 0u32..64,
            spans in proptest::collection::vec(arb_span(), 24),
        ) {
            let buf = TraceBuffer { rank, stage, dp, spans };
            let bytes = buf.to_bytes();
            prop_assert_eq!(TraceBuffer::from_bytes(&bytes).unwrap(), buf);
        }
    }
}
