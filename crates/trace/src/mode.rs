//! The `OPT_TRACE` mode knob.

/// Environment variable selecting the trace mode (`off`, `spans`, `full`).
pub const ENV_TRACE: &str = "OPT_TRACE";

/// How much the tracer records.
///
/// * [`TraceMode::Off`] (the default) — nothing is recorded; the
///   instrumentation points reduce to one thread-local read and a branch,
///   so a traced binary pays no measurable cost when tracing is off.
/// * [`TraceMode::Spans`] — the deterministic span tree: iteration,
///   pipeline slots, optimizer/DP/embedding phases, compressor
///   encode/decode, and the worker-level send/recv spans. The *structure*
///   of this tree (everything except wall-clock timestamps) is identical
///   across kernel-thread counts and across Local vs TCP transports.
/// * [`TraceMode::Full`] — additionally records a span around every
///   transport send and blocking receive (per-lane latency). These extra
///   spans depend on which backend carries the bytes, so `full` traces
///   are *not* covered by the structural-determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing (the default).
    #[default]
    Off,
    /// Record the deterministic span tree.
    Spans,
    /// Record the span tree plus transport-level send/recv latency spans.
    Full,
}

impl TraceMode {
    /// Parses a knob value (`"off"`, `"spans"`, `"full"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(TraceMode::Off),
            "spans" => Some(TraceMode::Spans),
            "full" => Some(TraceMode::Full),
            _ => None,
        }
    }

    /// Reads the mode from `OPT_TRACE`; unset or unrecognized means
    /// [`TraceMode::Off`].
    pub fn from_env() -> Self {
        std::env::var(ENV_TRACE)
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Whether any recording happens at all.
    pub fn enabled(self) -> bool {
        self != TraceMode::Off
    }

    /// Whether transport-level latency spans are recorded too.
    pub fn full(self) -> bool {
        self == TraceMode::Full
    }

    /// The canonical knob spelling of this mode.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Spans => "spans",
            TraceMode::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_canonical_spellings() {
        for mode in [TraceMode::Off, TraceMode::Spans, TraceMode::Full] {
            assert_eq!(TraceMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(TraceMode::parse("verbose"), None);
        assert_eq!(TraceMode::parse(""), None);
    }

    #[test]
    fn default_is_off() {
        assert_eq!(TraceMode::default(), TraceMode::Off);
        assert!(!TraceMode::Off.enabled());
        assert!(TraceMode::Spans.enabled());
        assert!(!TraceMode::Spans.full());
        assert!(TraceMode::Full.full());
    }
}
