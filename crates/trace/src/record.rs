//! The on-wire trace records: spans, per-thread buffers, and the
//! structural digest that backs the determinism contract.

use opt_tensor::{Persist, PersistError, Reader, Writer};

/// `micro` value for spans not tied to a microbatch.
pub const NO_MICRO: u32 = u32::MAX;

/// `parent` value for root spans (no enclosing span).
pub const NO_PARENT: u64 = u64::MAX;

/// Span flag bit: this backward slot carries a compression epilogue send.
pub const FLAG_EPILOGUE: u8 = 1;

/// Span flag bit: this decode applied a payload through the sparse fast
/// path (CSR kernels) instead of densify-then-dense math.
pub const FLAG_SPARSE: u8 = 2;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole training iteration on one rank.
    Iteration,
    /// A forward pipeline slot (one microbatch through one stage).
    Forward,
    /// A backward pipeline slot (one microbatch through one stage).
    Backward,
    /// The optimizer step at the end of an iteration.
    Optimizer,
    /// The data-parallel gradient exchange phase.
    DpExchange,
    /// The embedding-synchronization phase.
    EmbeddingSync,
    /// A compressor encode (gradient -> wire payload).
    Encode,
    /// A compressor decode (wire payload -> gradient).
    Decode,
    /// A message send (worker-level in `spans`, per-lane in `full`).
    Send,
    /// A message receive (worker-level in `spans`, per-lane in `full`).
    Recv,
    /// One validation pass over a held-out chunk.
    Validate,
    /// Coordinator-side: waiting for the heartbeat failure detector to
    /// name a dead rank (`micro` carries the detected rank).
    Detect,
    /// Coordinator-side: the whole single-rank rejoin — fence, quiesce,
    /// relaunch, splice, restore (`micro` carries the replaced rank).
    Rejoin,
    /// Coordinator-side: the world-wide self-restore rollback inside a
    /// rejoin (`iter` carries the resumed iteration).
    Restore,
    /// A compression epilogue handed off to a background thread so its
    /// encode + send overlap the data-parallel exchange (instant marker;
    /// `micro` carries the overlapped microbatch).
    OverlapLaunch,
    /// The barrier-side wait for an overlapped epilogue to finish
    /// (`bytes` carries the wire bytes the overlapped send moved).
    OverlapJoin,
}

impl SpanKind {
    /// Every kind, in tag order. New kinds append — codes are positional,
    /// so extending the enum never breaks previously recorded traces.
    pub const ALL: [SpanKind; 16] = [
        SpanKind::Iteration,
        SpanKind::Forward,
        SpanKind::Backward,
        SpanKind::Optimizer,
        SpanKind::DpExchange,
        SpanKind::EmbeddingSync,
        SpanKind::Encode,
        SpanKind::Decode,
        SpanKind::Send,
        SpanKind::Recv,
        SpanKind::Validate,
        SpanKind::Detect,
        SpanKind::Rejoin,
        SpanKind::Restore,
        SpanKind::OverlapLaunch,
        SpanKind::OverlapJoin,
    ];

    /// The wire tag of this kind.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|k| *k == self).unwrap() as u8
    }

    /// Decodes a wire tag.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The stable human-readable name (also the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Iteration => "iteration",
            SpanKind::Forward => "forward",
            SpanKind::Backward => "backward",
            SpanKind::Optimizer => "optimizer",
            SpanKind::DpExchange => "dp_exchange",
            SpanKind::EmbeddingSync => "embedding_sync",
            SpanKind::Encode => "encode",
            SpanKind::Decode => "decode",
            SpanKind::Send => "send",
            SpanKind::Recv => "recv",
            SpanKind::Validate => "validate",
            SpanKind::Detect => "detect",
            SpanKind::Rejoin => "rejoin",
            SpanKind::Restore => "restore",
            SpanKind::OverlapLaunch => "overlap_launch",
            SpanKind::OverlapJoin => "overlap_join",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this span is pipeline compute (forward/backward slots and
    /// the optimizer step).
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            SpanKind::Forward | SpanKind::Backward | SpanKind::Optimizer
        )
    }

    /// Whether this span is communication. [`SpanKind::OverlapJoin`]
    /// counts: it is the residual wait for an overlapped epilogue send,
    /// i.e. the part of that send the overlap failed to hide.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            SpanKind::Send
                | SpanKind::Recv
                | SpanKind::DpExchange
                | SpanKind::EmbeddingSync
                | SpanKind::OverlapJoin
        )
    }

    /// Whether this span is part of failure detection / elastic rejoin.
    pub fn is_recovery(self) -> bool {
        matches!(
            self,
            SpanKind::Detect | SpanKind::Rejoin | SpanKind::Restore
        )
    }

    /// The Chrome-trace category string.
    pub fn category(self) -> &'static str {
        if self.is_compute() {
            "compute"
        } else if self.is_comm() {
            "comm"
        } else if matches!(self, SpanKind::Encode | SpanKind::Decode) {
            "codec"
        } else if self.is_recovery() {
            "recovery"
        } else {
            "other"
        }
    }
}

/// One closed span on one rank's worker thread.
///
/// The *structural* fields — everything except `start_ns` and `dur_ns` —
/// are covered by the determinism contract: a `spans`-mode run records the
/// same structure regardless of kernel-thread count or transport backend.
/// The two timestamp fields are wall-clock and vary run to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Per-thread sequence number (also the span's id within its buffer).
    pub seq: u64,
    /// `seq` of the enclosing open span, or [`NO_PARENT`].
    pub parent: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Training iteration the span belongs to.
    pub iter: u64,
    /// Microbatch index, or [`NO_MICRO`].
    pub micro: u32,
    /// Bytes moved or encoded by the span (0 for pure compute).
    pub bytes: u64,
    /// Flag bits ([`FLAG_EPILOGUE`], ...).
    pub flags: u8,
    /// Wall-clock start, nanoseconds since the UNIX epoch. Excluded from
    /// structural digests.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds. Excluded from structural
    /// digests.
    pub dur_ns: u64,
}

/// Encoded size of one span (fixed-width fields only).
const SPAN_WIRE_BYTES: usize = 8 + 8 + 1 + 8 + 4 + 8 + 1 + 8 + 8;

impl Persist for SpanRecord {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.seq);
        w.u64(self.parent);
        w.u8(self.kind.code());
        w.u64(self.iter);
        w.u32(self.micro);
        w.u64(self.bytes);
        w.u8(self.flags);
        w.u64(self.start_ns);
        w.u64(self.dur_ns);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let seq = r.u64()?;
        let parent = r.u64()?;
        let tag = r.u8()?;
        let kind = SpanKind::from_code(tag).ok_or(PersistError::BadTag {
            what: "SpanKind",
            tag,
        })?;
        Ok(SpanRecord {
            seq,
            parent,
            kind,
            iter: r.u64()?,
            micro: r.u32()?,
            bytes: r.u64()?,
            flags: r.u8()?,
            start_ns: r.u64()?,
            dur_ns: r.u64()?,
        })
    }
}

/// One rank's recorded spans, shipped to the coordinator at run end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    /// Global rank (`dp * pp + stage`).
    pub rank: u32,
    /// Pipeline stage index of the rank.
    pub stage: u32,
    /// Data-parallel index of the rank.
    pub dp: u32,
    /// The rank's spans, ordered by `seq`.
    pub spans: Vec<SpanRecord>,
}

impl Persist for TraceBuffer {
    fn persist(&self, w: &mut Writer) {
        w.u32(self.rank);
        w.u32(self.stage);
        w.u32(self.dp);
        w.usize(self.spans.len());
        for s in &self.spans {
            s.persist(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let rank = r.u32()?;
        let stage = r.u32()?;
        let dp = r.u32()?;
        let n = r.checked_len(SPAN_WIRE_BYTES)?;
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            spans.push(SpanRecord::restore(r)?);
        }
        Ok(TraceBuffer {
            rank,
            stage,
            dp,
            spans,
        })
    }
}

/// FNV-1a, the repo's standard cheap stable hash.
pub(crate) fn fnv1a64(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl TraceBuffer {
    /// A digest over the buffer's *structural* fields only — span
    /// timestamps and durations are excluded, so two runs with identical
    /// structure (the determinism contract) produce identical digests.
    pub fn structural_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a64(&mut h, &self.rank.to_le_bytes());
        fnv1a64(&mut h, &self.stage.to_le_bytes());
        fnv1a64(&mut h, &self.dp.to_le_bytes());
        for s in &self.spans {
            fnv1a64(&mut h, &s.seq.to_le_bytes());
            fnv1a64(&mut h, &s.parent.to_le_bytes());
            fnv1a64(&mut h, &[s.kind.code(), s.flags]);
            fnv1a64(&mut h, &s.iter.to_le_bytes());
            fnv1a64(&mut h, &s.micro.to_le_bytes());
            fnv1a64(&mut h, &s.bytes.to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span(seq: u64) -> SpanRecord {
        SpanRecord {
            seq,
            parent: if seq == 0 { NO_PARENT } else { seq - 1 },
            kind: SpanKind::from_code((seq % SpanKind::ALL.len() as u64) as u8).unwrap(),
            iter: seq / 3,
            micro: if seq.is_multiple_of(2) {
                NO_MICRO
            } else {
                seq as u32
            },
            bytes: seq * 17,
            flags: (seq % 2) as u8,
            start_ns: 1_000 + seq,
            dur_ns: 10 * seq,
        }
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_code(kind.code()), Some(kind));
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_code(200), None);
        assert_eq!(SpanKind::from_name("nope"), None);
    }

    #[test]
    fn buffer_persist_roundtrips() {
        let buf = TraceBuffer {
            rank: 3,
            stage: 1,
            dp: 1,
            spans: (0..20).map(sample_span).collect(),
        };
        let bytes = buf.to_bytes();
        assert_eq!(TraceBuffer::from_bytes(&bytes).unwrap(), buf);
    }

    #[test]
    fn bad_kind_tag_is_rejected() {
        let mut buf = TraceBuffer {
            rank: 0,
            stage: 0,
            dp: 0,
            spans: vec![sample_span(0)],
        };
        buf.spans[0].kind = SpanKind::Iteration;
        let mut bytes = buf.to_bytes();
        // The kind tag sits after rank/stage/dp (12), len (8), seq+parent (16).
        bytes[12 + 8 + 16] = 99;
        assert!(matches!(
            TraceBuffer::from_bytes(&bytes),
            Err(PersistError::BadTag {
                what: "SpanKind",
                ..
            })
        ));
    }

    #[test]
    fn digest_ignores_timestamps_but_not_structure() {
        let buf = TraceBuffer {
            rank: 1,
            stage: 0,
            dp: 1,
            spans: (0..5).map(sample_span).collect(),
        };
        let mut shifted = buf.clone();
        for s in &mut shifted.spans {
            s.start_ns += 999;
            s.dur_ns *= 2;
        }
        assert_eq!(buf.structural_digest(), shifted.structural_digest());

        let mut mutated = buf.clone();
        mutated.spans[2].bytes += 1;
        assert_ne!(buf.structural_digest(), mutated.structural_digest());
    }
}
