//! The thread-local span recorder.
//!
//! Each worker thread [`install`]s a tracer once at startup; the
//! instrumentation points across the workspace call [`begin`] /
//! [`begin_full`] and get back a [`SpanGuard`] that closes the span on
//! drop. A thread with no tracer installed (the default, and every
//! kernel-pool or transport-bridge helper thread) records nothing —
//! which is precisely what keeps the span tree independent of
//! `OPT_KERNEL_THREADS` and of the transport backend.
//!
//! There are no locks anywhere on this path: the recorder is a plain
//! thread-local `Vec` push, and spans only leave the thread when
//! [`take_buffer`] drains them at run end.

use crate::mode::TraceMode;
use crate::record::{SpanKind, SpanRecord, TraceBuffer, NO_PARENT};
use std::cell::RefCell;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct ThreadTracer {
    mode: TraceMode,
    next_seq: u64,
    /// Indices (into `spans`) of the currently open spans, innermost last.
    open: Vec<usize>,
    spans: Vec<SpanRecord>,
    epoch: Instant,
    /// UNIX nanos at `epoch`, so spans from different processes land on a
    /// roughly shared wall-clock axis in the merged trace.
    base_ns: u64,
}

impl ThreadTracer {
    fn new(mode: TraceMode) -> Self {
        let base_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        ThreadTracer {
            mode,
            next_seq: 0,
            open: Vec::new(),
            spans: Vec::new(),
            epoch: Instant::now(),
            base_ns,
        }
    }

    fn now_ns(&self) -> u64 {
        self.base_ns + self.epoch.elapsed().as_nanos() as u64
    }

    fn open_span(&mut self, kind: SpanKind, iter: u64, micro: u32, bytes: u64, flags: u8) {
        let parent = self
            .open
            .last()
            .map_or(NO_PARENT, |&idx| self.spans[idx].seq);
        let seq = self.next_seq;
        self.next_seq += 1;
        let start_ns = self.now_ns();
        self.spans.push(SpanRecord {
            seq,
            parent,
            kind,
            iter,
            micro,
            bytes,
            flags,
            start_ns,
            dur_ns: 0,
        });
        self.open.push(self.spans.len() - 1);
    }

    fn close_span(&mut self) {
        let idx = self.open.pop().expect("span close without open span");
        let now = self.now_ns();
        let span = &mut self.spans[idx];
        span.dur_ns = now.saturating_sub(span.start_ns);
    }
}

thread_local! {
    static TRACER: RefCell<Option<ThreadTracer>> = const { RefCell::new(None) };
}

/// Installs (or, with [`TraceMode::Off`], removes) the calling thread's
/// tracer. Worker threads call this once at startup; everything recorded
/// afterwards stays on this thread until [`take_buffer`].
pub fn install(mode: TraceMode) {
    TRACER.with(|t| {
        *t.borrow_mut() = if mode.enabled() {
            Some(ThreadTracer::new(mode))
        } else {
            None
        };
    });
}

/// The calling thread's trace mode ([`TraceMode::Off`] when no tracer is
/// installed).
pub fn thread_mode() -> TraceMode {
    TRACER.with(|t| t.borrow().as_ref().map_or(TraceMode::Off, |tr| tr.mode))
}

/// Drains the calling thread's recorded spans into a [`TraceBuffer`]
/// stamped with the given rank coordinates. Returns an empty buffer when
/// no tracer is installed. The tracer stays installed (sequence numbers
/// keep increasing), so repeated takes never reuse span ids.
pub fn take_buffer(rank: u32, stage: u32, dp: u32) -> TraceBuffer {
    let spans = TRACER.with(|t| {
        t.borrow_mut().as_mut().map_or_else(Vec::new, |tr| {
            debug_assert!(tr.open.is_empty(), "taking a trace with open spans");
            tr.open.clear();
            std::mem::take(&mut tr.spans)
        })
    });
    TraceBuffer {
        rank,
        stage,
        dp,
        spans,
    }
}

/// Closes its span when dropped. Obtained from [`begin`] / [`begin_full`];
/// inert (and free) when the thread records nothing.
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn inactive() -> Self {
        SpanGuard { active: false }
    }

    /// Whether this guard actually opened a span.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Updates the byte count of the span this guard opened (for spans
    /// whose payload size is only known mid-flight, e.g. an encode whose
    /// wire size depends on the chosen compressor).
    pub fn set_bytes(&self, bytes: u64) {
        if !self.active {
            return;
        }
        TRACER.with(|t| {
            if let Some(tr) = t.borrow_mut().as_mut() {
                if let Some(&idx) = tr.open.last() {
                    tr.spans[idx].bytes = bytes;
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            TRACER.with(|t| {
                if let Some(tr) = t.borrow_mut().as_mut() {
                    tr.close_span();
                }
            });
        }
    }
}

fn begin_if(
    want_full: bool,
    kind: SpanKind,
    iter: u64,
    micro: u32,
    bytes: u64,
    flags: u8,
) -> SpanGuard {
    TRACER.with(|t| {
        let mut borrow = t.borrow_mut();
        match borrow.as_mut() {
            Some(tr) if !want_full || tr.mode.full() => {
                tr.open_span(kind, iter, micro, bytes, flags);
                SpanGuard { active: true }
            }
            _ => SpanGuard::inactive(),
        }
    })
}

/// Opens a span on the calling thread's tracer (recorded in both `spans`
/// and `full` modes). Returns an inert guard when tracing is off.
pub fn begin(kind: SpanKind, iter: u64, micro: u32, bytes: u64, flags: u8) -> SpanGuard {
    begin_if(false, kind, iter, micro, bytes, flags)
}

/// Opens a span recorded only in [`TraceMode::Full`] — the transport
/// backends use this for per-lane send/recv latency, which is backend-
/// dependent and therefore excluded from the `spans`-mode determinism
/// contract.
pub fn begin_full(kind: SpanKind, iter: u64, micro: u32, bytes: u64, flags: u8) -> SpanGuard {
    begin_if(true, kind, iter, micro, bytes, flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NO_MICRO;

    #[test]
    fn no_tracer_records_nothing() {
        install(TraceMode::Off);
        let g = begin(SpanKind::Forward, 0, 0, 0, 0);
        assert!(!g.is_active());
        drop(g);
        let buf = take_buffer(0, 0, 0);
        assert!(buf.spans.is_empty());
    }

    #[test]
    fn spans_nest_and_parent_correctly() {
        install(TraceMode::Spans);
        {
            let _it = begin(SpanKind::Iteration, 7, NO_MICRO, 0, 0);
            {
                let _f = begin(SpanKind::Forward, 7, 0, 0, 0);
                let _r = begin(SpanKind::Recv, 7, 0, 128, 0);
            }
            let _b = begin(SpanKind::Backward, 7, 0, 0, 0);
        }
        let buf = take_buffer(2, 0, 1);
        install(TraceMode::Off);
        assert_eq!(buf.rank, 2);
        let kinds: Vec<_> = buf.spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Iteration,
                SpanKind::Forward,
                SpanKind::Recv,
                SpanKind::Backward
            ]
        );
        assert_eq!(buf.spans[0].parent, NO_PARENT);
        assert_eq!(buf.spans[1].parent, buf.spans[0].seq);
        assert_eq!(buf.spans[2].parent, buf.spans[1].seq);
        assert_eq!(buf.spans[3].parent, buf.spans[0].seq);
        assert_eq!(buf.spans[2].bytes, 128);
    }

    #[test]
    fn full_only_spans_skipped_in_spans_mode() {
        install(TraceMode::Spans);
        drop(begin_full(SpanKind::Send, 0, NO_MICRO, 64, 0));
        drop(begin(SpanKind::Send, 0, NO_MICRO, 64, 0));
        let buf = take_buffer(0, 0, 0);
        install(TraceMode::Off);
        assert_eq!(buf.spans.len(), 1);

        install(TraceMode::Full);
        drop(begin_full(SpanKind::Send, 0, NO_MICRO, 64, 0));
        let buf = take_buffer(0, 0, 0);
        install(TraceMode::Off);
        assert_eq!(buf.spans.len(), 1);
    }

    #[test]
    fn set_bytes_updates_innermost_open_span() {
        install(TraceMode::Spans);
        {
            let g = begin(SpanKind::Encode, 1, 3, 0, 0);
            g.set_bytes(4096);
        }
        let buf = take_buffer(0, 0, 0);
        install(TraceMode::Off);
        assert_eq!(buf.spans[0].bytes, 4096);
    }

    #[test]
    fn repeated_takes_never_reuse_seq() {
        install(TraceMode::Spans);
        drop(begin(SpanKind::Forward, 0, 0, 0, 0));
        let first = take_buffer(0, 0, 0);
        drop(begin(SpanKind::Backward, 0, 0, 0, 0));
        let second = take_buffer(0, 0, 0);
        install(TraceMode::Off);
        assert_eq!(first.spans[0].seq, 0);
        assert_eq!(second.spans[0].seq, 1);
    }
}
