//! Checkpoint/restore walkthrough: train under full Optimus-CC
//! compression, snapshot to disk, kill the job the way a worker failure
//! would, restore from the file, and verify the resumed run reproduces the
//! uninterrupted run bit for bit — compression state (PowerSGD warm
//! starts, lazy-error residuals, DP error feedback) included.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use optimus::ckpt::Snapshot;
use optimus::core::{QualityConfig, Trainer, TrainerConfig};

fn main() {
    let total: u64 = 20;
    let snap_at: u64 = 10;
    let cfg = || TrainerConfig::small_test(QualityConfig::cb_fe_sc(), total);
    let path = std::env::temp_dir().join(format!(
        "optimus-checkpoint-resume-{}.ckpt",
        std::process::id()
    ));

    println!("reference: training {total} iterations straight through...");
    let mut straight = Trainer::launch(cfg());
    let straight_report = straight.train();
    straight.shutdown();

    println!("faulted:   training {snap_at} iterations, snapshotting, killing the job...");
    let mut victim = Trainer::launch(cfg());
    victim.train_more(snap_at);
    victim.save_snapshot(&path).expect("snapshot saved");
    let snap_size = std::fs::metadata(&path).expect("snapshot on disk").len();
    victim.train_more(3); // progress the failure will destroy
    victim.kill(); // no clean shutdown — channels just die

    println!(
        "           snapshot is {snap_size} bytes on disk ({} parameter tensors across {} ranks)",
        Snapshot::load(&path)
            .expect("snapshot loads")
            .ranks
            .iter()
            .map(|r| r.params.len())
            .sum::<usize>(),
        Snapshot::load(&path).expect("snapshot loads").ranks.len(),
    );

    println!("restore:   relaunching from the snapshot and finishing the run...");
    let mut resumed = Trainer::restore_from_file(cfg(), &path).expect("snapshot restores");
    let resumed_report = resumed.train();
    resumed.shutdown();

    println!("\niter   straight-run loss   resumed-run loss    bit-exact?");
    let mut all_exact = true;
    for iter in snap_at as usize..total as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        let exact = a.to_bits() == b.to_bits();
        all_exact &= exact;
        println!(
            "{iter:<6} {a:<19.9} {b:<19.9} {}",
            if exact { "yes" } else { "NO" }
        );
    }
    assert!(all_exact, "resume was not bit-exact");
    println!("\nevery post-restore loss is bit-identical to the uninterrupted run.");

    // A corrupted snapshot is rejected, never half-applied.
    let mut bytes = std::fs::read(&path).expect("snapshot bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted snapshot");
    let err = Trainer::restore_from_file(cfg(), &path).expect_err("corruption must be caught");
    println!("flipping one bit in the file -> restore fails with: {err}");
    let _ = std::fs::remove_file(&path);
}
