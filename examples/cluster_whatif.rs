//! What-if cluster planning: use the discrete-event simulator to project
//! training time for a paper-scale job under each compression plan, on a
//! cluster you describe.
//!
//! Run with: `cargo run --release --example cluster_whatif -- [model]`
//! where `model` is one of `2.5b`, `8.3b`, `9.2b`, `39b`, `175b`.

use optimus::model::GptConfig;
use optimus::sim::{breakdown, simulate, CompressionPlan, SimConfig};

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "8.3b".to_string());
    let model = match arg.as_str() {
        "2.5b" => GptConfig::gpt_2_5b(),
        "8.3b" => GptConfig::gpt_8_3b(),
        "9.2b" => GptConfig::gpt_9_2b(),
        "39b" => GptConfig::gpt_39b(),
        "175b" => GptConfig::gpt_175b(),
        other => {
            eprintln!("unknown model '{other}', expected 2.5b|8.3b|9.2b|39b|175b");
            std::process::exit(1);
        }
    };
    let mut cfg = SimConfig::paper_defaults(model);
    if !cfg.model.n_layers.is_multiple_of(cfg.pp) {
        cfg.pp = 4;
    }
    if arg == "175b" {
        cfg.pp = 16; // 96 layers / 16 stages; needs 512 GPUs at TP8/DP4.
        cfg.topology.nodes = 64;
    }

    println!(
        "planning {} on {} GPUs (TP{}/DP{}/PP{}), {} micro-batches of {}:",
        cfg.model.name,
        cfg.topology.total_gpus(),
        cfg.tp,
        cfg.dp,
        cfg.pp,
        cfg.n_micro,
        cfg.micro_batch
    );
    let base = simulate(&cfg).iteration_time_s;
    for (label, plan) in CompressionPlan::table2_columns() {
        let c = cfg.clone().with_plan(plan);
        let r = simulate(&c);
        let b = breakdown(&c);
        println!(
            "  {label:<10} iter {:>7.3} s  ({:>7.2} days / 230K iters, {:+.2}% vs baseline) — \
             compute {:.2}s, exposed comm {:.2}s",
            r.iteration_time_s,
            r.training_days(230_000),
            (base / r.iteration_time_s - 1.0) * 100.0,
            b.fwd_bwd,
            b.comm_exposed(),
        );
    }
}
