//! Compression playground: compare every compressor in the library on
//! the same synthetic gradient — compression ratio, reconstruction error,
//! and the effect of error feedback over a stream of gradients.
//!
//! Run with: `cargo run --release --example compression_playground`

use optimus::compress::{
    Compressor, ErrorFeedback, PowerSgd, SignQuantizer, TernaryQuantizer, TopK,
};
use optimus::tensor::{relative_error, Matrix, SeedStream};

fn main() {
    let mut rng = SeedStream::new(7);
    let grad = rng.uniform_matrix(256, 128, 1.0);

    println!("single-shot compression of a 256x128 gradient:");
    println!("{:<22} {:>10} {:>12}", "compressor", "ratio", "rel. error");
    let mut entries: Vec<(String, Box<dyn Compressor>)> = vec![
        ("powersgd rank 1".into(), Box::new(PowerSgd::new(1, 1))),
        ("powersgd rank 4".into(), Box::new(PowerSgd::new(4, 1))),
        ("powersgd rank 16".into(), Box::new(PowerSgd::new(16, 1))),
        ("topk 1%".into(), Box::new(TopK::new(0.01))),
        ("topk 10%".into(), Box::new(TopK::new(0.10))),
        ("sign 1-bit".into(), Box::new(SignQuantizer::new())),
        ("ternary".into(), Box::new(TernaryQuantizer::new(2))),
    ];
    for (name, comp) in entries.iter_mut() {
        let payload = comp.compress(&grad);
        println!(
            "{:<22} {:>9.1}x {:>12.4}",
            name,
            payload.ratio(),
            relative_error(&grad, &payload.decompress())
        );
    }

    println!("\nerror feedback over a stream of 50 correlated gradients (rank-1 PowerSGD):");
    let base = rng.uniform_matrix(64, 64, 1.0);
    let run = |ef: bool| -> f32 {
        let mut plain = PowerSgd::new(1, 3);
        let mut with_ef = ErrorFeedback::new(PowerSgd::new(1, 3));
        let mut noise_rng = SeedStream::new(99);
        let mut delivered = Matrix::zeros(64, 64);
        let mut truth = Matrix::zeros(64, 64);
        for _ in 0..50 {
            let g = base.add(&noise_rng.uniform_matrix(64, 64, 0.2));
            truth.add_assign(&g);
            let payload = if ef {
                with_ef.compress(&g)
            } else {
                plain.compress(&g)
            };
            delivered.add_assign(&payload.decompress());
        }
        delivered.sub(&truth).norm() / truth.norm()
    };
    println!(
        "  without error feedback: cumulative rel. error {:.4}",
        run(false)
    );
    println!(
        "  with error feedback:    cumulative rel. error {:.4}",
        run(true)
    );
    println!("\nEF recovers the mass lossy compression drops — the same mechanism lazy");
    println!("error propagation applies within an iteration (Optimus-CC §5.1).");
}
