//! Cross-host elastic restore walkthrough: train under full Optimus-CC
//! compression, publish a **sharded** checkpoint (each worker writes its
//! own checksummed shard plus one small manifest), kill the job the way a
//! worker failure would, then relaunch a fresh world in which every
//! worker rendezvouses on the manifest and fetches *only its own shard* —
//! exactly what a replacement worker on a different host does. The
//! resumed run reproduces the uninterrupted run bit for bit.
//!
//! Run with: `cargo run --release --example elastic_restore`
//!
//! Shards are written to `target/elastic-restore-shards` — build scratch,
//! never the repository working tree (override with `OPT_SHARD_DIR`) —
//! and left on disk so CI can archive the manifest.

use optimus::ckpt::{CkptError, ShardManifest, MANIFEST_FILE};
use optimus::core::{QualityConfig, Trainer, TrainerConfig};
use optimus::net::{FsShardStore, ShardStore};
use std::sync::Arc;

fn main() {
    let total: u64 = 20;
    let snap_at: u64 = 10;
    let cfg = || TrainerConfig::small_test(QualityConfig::cb_fe_sc(), total);
    let dir =
        std::env::var("OPT_SHARD_DIR").unwrap_or_else(|_| "target/elastic-restore-shards".into());
    let fs = FsShardStore::new(&dir);
    let store: Arc<dyn ShardStore> = Arc::new(fs.clone());

    println!("reference: training {total} iterations straight through...");
    let mut straight = Trainer::launch(cfg());
    let straight_report = straight.train();
    straight.shutdown();

    println!("faulted:   training {snap_at} iterations, publishing per-rank shards, killing...");
    let mut victim = Trainer::launch(cfg());
    victim.train_more(snap_at);
    let manifest = victim.save_sharded(&store).expect("shards published");
    victim.train_more(3); // progress the failure will destroy
    victim.kill(); // no clean shutdown — channels just die

    println!("\nshard store at {dir}/ after the save:");
    println!("  {:<18} {:>8}  checksum", "object", "bytes");
    let manifest_bytes = store.get(MANIFEST_FILE).expect("manifest published").len();
    println!(
        "  {MANIFEST_FILE:<18} {manifest_bytes:>8}  (iter {})",
        manifest.meta.iter
    );
    for entry in &manifest.shards {
        println!(
            "  {:<18} {:>8}  {:#018x}",
            entry.name, entry.bytes, entry.checksum
        );
    }

    println!("\nrestore:   fresh workers, each fetching ONLY its own shard from the store...");
    let mut resumed = Trainer::restore_sharded(cfg(), &store).expect("elastic restore");
    assert_eq!(resumed.trained_iters(), snap_at);
    let resumed_report = resumed.train();
    resumed.shutdown();

    println!("\niter   straight-run loss   resumed-run loss    bit-exact?");
    let mut all_exact = true;
    for iter in snap_at as usize..total as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        let exact = a.to_bits() == b.to_bits();
        all_exact &= exact;
        println!(
            "{iter:<6} {a:<19.9} {b:<19.9} {}",
            if exact { "yes" } else { "NO" }
        );
    }
    assert!(all_exact, "elastic restore was not bit-exact");
    println!("\nevery post-restore loss is bit-identical to the uninterrupted run.");

    // A corrupted shard is caught by the manifest checksum before any
    // worker applies it — then we put the good bytes back so the
    // directory this example leaves behind is a valid checkpoint.
    let victim_name = &manifest.shards[0].name;
    let good = store.get(victim_name).expect("shard bytes");
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    store.put(victim_name, &bad).expect("write corrupted shard");
    let err = Trainer::restore_sharded(cfg(), &store).expect_err("corruption must be caught");
    assert!(matches!(err, CkptError::ChecksumMismatch { .. }));
    println!("flipping one bit in {victim_name} -> restore fails with: {err}");
    store.put(victim_name, &good).expect("restore good shard");
    let reloaded = ShardManifest::load(fs.dir().join(MANIFEST_FILE)).expect("manifest reloads");
    assert_eq!(reloaded, manifest);
    println!("shard directory left at {dir}/ (manifest + one shard per rank).");
}
