//! Quickstart: train a small GPT with full Optimus-CC compression on a
//! 4-stage, 2-way data-parallel in-process "cluster" and compare wire
//! traffic against the uncompressed baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use optimus::core::{QualityConfig, Trainer, TrainerConfig};
use optimus::net::TrafficClass;

fn main() {
    let iters = 120;

    println!("training baseline (no compression)...");
    let mut base = Trainer::launch(TrainerConfig::small_test(QualityConfig::baseline(), iters));
    let base_report = base.train();
    base.shutdown();

    println!("training Optimus-CC (CB + fused EMB sync + selective stage compression)...");
    let mut opt = Trainer::launch(TrainerConfig::small_test(QualityConfig::cb_fe_sc(), iters));
    let opt_report = opt.train();
    opt.shutdown();

    println!("\n                         baseline      optimus-cc");
    println!(
        "final validation PPL     {:<12.3}  {:<12.3}",
        base_report.final_val_ppl(),
        opt_report.final_val_ppl()
    );
    for class in [
        TrafficClass::InterStage,
        TrafficClass::DataParallel,
        TrafficClass::Embedding,
    ] {
        let b = base_report.traffic.bytes(class);
        let o = opt_report.traffic.bytes(class);
        println!(
            "{:<24} {:<12}  {:<12}  ({:.1}% saved)",
            class.to_string(),
            b,
            o,
            (1.0 - o as f64 / b as f64) * 100.0
        );
    }
    println!("\nOptimus-CC transmits far fewer bytes at (near-)baseline model quality.");
}
