//! Trace profile: train a tiny 2-stage, 2-way-DP pipeline under
//! spans-mode tracing, export the merged Chrome trace (loadable at
//! <https://ui.perfetto.dev>), and print the per-rank pipeline-bubble /
//! comm-overlap report.
//!
//! Run with: `cargo run --release --example trace_profile`

use optimus::core::{QualityConfig, TraceMode, Trainer, TrainerConfig};
use optimus::trace::{analyze, render};

fn main() {
    let cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 8);
    let (pp, dp, n_micro) = (cfg.pp, cfg.dp, cfg.n_micro);

    println!("training {pp}x{dp} (pp x dp) with spans-mode tracing...");
    let mut trainer = Trainer::launch_with_trace(cfg, TraceMode::Spans);
    let report = trainer.train();
    let trace = trainer.take_trace().expect("spans mode is enabled");
    trainer.shutdown();

    let out_dir = std::path::Path::new("target/trace-profile");
    std::fs::create_dir_all(out_dir).expect("creating output dir");
    let path = out_dir.join("trace.json");
    std::fs::write(&path, trace.to_chrome_json()).expect("writing trace");

    println!(
        "final validation PPL {:.3}; {} spans ({} compute) from {} ranks",
        report.final_val_ppl(),
        trace.span_count(),
        trace.compute_span_count(),
        trace.buffers.len()
    );
    println!(
        "wrote {} — load it at https://ui.perfetto.dev to browse the timeline\n",
        path.display()
    );

    print!("{}", render(&analyze(&trace, 5)));
    println!(
        "\nideal 1F1B bubble fraction at pp={pp}, m={n_micro}: {:.4}",
        optimus::schedule::bubble_fraction(pp, n_micro)
    );
    println!("(the measured bubble column above is the structural replay of the recorded slots)");
}
