//! Zero-shot evaluation demo: pretrain the small GPT twice — with and
//! without lazy error propagation — then probe both frozen models on the
//! five synthetic tasks (the paper's Table 4 protocol).
//!
//! Run with: `cargo run --release --example zero_shot_eval`

use optimus::core::{QualityConfig, Trainer, TrainerConfig};
use optimus::data::ZeroShotTask;

fn main() {
    let iters = 250;
    let n_examples = 150;

    let mut results = Vec::new();
    for (label, q) in [
        ("CB (Non-LEP)", QualityConfig::cb_non_lep()),
        ("CB (LEP)", QualityConfig::cb()),
    ] {
        println!("pretraining {label} for {iters} iterations...");
        let mut t = Trainer::launch(TrainerConfig::small_test(q, iters));
        let report = t.train();
        let suite = t.zero_shot_suite(n_examples, 42);
        t.shutdown();
        results.push((label, report.final_val_ppl(), suite));
    }

    println!("\n{:<28} {:>14} {:>14}", "task", results[0].0, results[1].0);
    for ti in 0..ZeroShotTask::ALL.len() {
        let task = ZeroShotTask::ALL[ti];
        println!(
            "{:<28} {:>13.1}% {:>13.1}%",
            format!("{:?} ({})", task, task.paper_benchmark()),
            results[0].2[ti].1.accuracy() * 100.0,
            results[1].2[ti].1.accuracy() * 100.0,
        );
    }
    println!(
        "{:<28} {:>14.3} {:>14.3}",
        "validation PPL", results[0].1, results[1].1
    );
    println!("\nLazy error propagation keeps compressed backpropagation from degrading");
    println!("the pretrained model's zero-shot abilities (paper Table 4).");
}
