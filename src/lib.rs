//! Umbrella crate re-exporting the Optimus-CC reproduction workspace.
//!
//! The reproduction is organized as a Cargo workspace; this crate exists so
//! that examples and integration tests can reach every subsystem through a
//! single dependency (`optimus::tensor`, `optimus::ckpt`, `optimus::core`,
//! ...).
//!
//! ```
//! use optimus::tensor::Matrix;
//! let m = Matrix::zeros(2, 2);
//! assert_eq!(m.rows(), 2);
//! ```
pub use opt_ckpt as ckpt;
pub use opt_compress as compress;
pub use opt_data as data;
pub use opt_model as model;
pub use opt_net as net;
pub use opt_schedule as schedule;
pub use opt_sim as sim;
pub use opt_tensor as tensor;
pub use opt_trace as trace;
pub use optimus_cc as core;
