//! The checkpoint subsystem's headline guarantee, exercised end to end:
//! train N iterations straight versus train k, snapshot, kill, restore,
//! train N−k — identical per-iteration losses and identical post-restore
//! traffic-ledger deltas, with every compression state object (PowerSGD
//! warm starts, LEP residuals, DP error feedback) round-tripping through
//! the on-disk format.

use optimus::ckpt::{CkptError, FaultPlan, Snapshot, MANIFEST_FILE};
use optimus::core::{run_with_faults, QualityConfig, Trainer, TrainerConfig};
use optimus::net::{MemShardStore, ShardStore, ShardStoreError, TrafficClass};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn snap_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("optimus-{tag}-{}.ckpt", std::process::id()))
}

/// Full Optimus-CC stack: CB (PowerSGD + LEP), fused embedding, selective
/// stage compression — the configuration with the most state to lose.
fn full_stack_cfg(iters: u64) -> TrainerConfig {
    TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), iters)
}

#[test]
fn resume_is_bit_exact_including_compression_state() {
    const TOTAL: u64 = 12;
    const SNAP_AT: u64 = 6;

    // Straight run, with a mid-run traffic mark at the snapshot point.
    let mut straight = Trainer::launch(full_stack_cfg(TOTAL));
    straight.train_more(SNAP_AT);
    let traffic_mid = straight.traffic();
    straight.train_more(TOTAL - SNAP_AT);
    let straight_report = straight.report();
    let traffic_end = straight.traffic();
    straight.shutdown();

    // Faulted run: snapshot at k, do some doomed extra work, kill, restore
    // from disk, finish.
    let path = snap_path("resume");
    let mut victim = Trainer::launch(full_stack_cfg(TOTAL));
    victim.train_more(SNAP_AT);
    victim.save_snapshot(&path).expect("snapshot saved");
    victim.train_more(2); // work that the failure will destroy
    victim.kill();

    let mut resumed =
        Trainer::restore_from_file(full_stack_cfg(TOTAL), &path).expect("snapshot restores");
    assert_eq!(resumed.trained_iters(), SNAP_AT);
    resumed.train_more(TOTAL - SNAP_AT);
    let resumed_report = resumed.report();
    let resumed_traffic = resumed.traffic();
    resumed.shutdown();
    let _ = std::fs::remove_file(&path);

    // Losses after the restore point must match the straight run *bit for
    // bit* — any forgotten state (an RNG counter, a residual, a warm-start
    // factor, an Adam moment) shows up here.
    for iter in SNAP_AT as usize..TOTAL as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {iter}: straight {a} != resumed {b}"
        );
    }
    // Pre-restore iterations belong to the killed incarnation.
    for iter in 0..SNAP_AT as usize {
        assert!(resumed_report.train_loss[iter].is_nan());
    }

    // Post-restore wire traffic must also be identical, class by class:
    // the resumed ledger (which starts at zero) equals the straight run's
    // delta over the same iterations.
    for class in TrafficClass::ALL {
        assert_eq!(
            traffic_end.bytes(class) - traffic_mid.bytes(class),
            resumed_traffic.bytes(class),
            "byte delta mismatch for {class}"
        );
        assert_eq!(
            traffic_end.messages(class) - traffic_mid.messages(class),
            resumed_traffic.messages(class),
            "message delta mismatch for {class}"
        );
    }
}

#[test]
fn fault_harness_reproduces_the_straight_run() {
    // The scripted-failure driver must land on the same trajectory.
    const TOTAL: u64 = 9;
    let cfg = full_stack_cfg(TOTAL);

    let mut straight = Trainer::launch(cfg.clone());
    let straight_report = straight.train();
    straight.shutdown();

    let plan = FaultPlan::new(1, 5, 3); // snapshot at 3 & 6, die at 5
    let outcome = run_with_faults(&cfg, &plan).expect("faulted run completes");
    assert_eq!(outcome.restarts, 1);
    assert_eq!(outcome.resumed_from, Some(3));
    assert_eq!(outcome.lost_iters, 2);
    for iter in 3..TOTAL as usize {
        assert_eq!(
            straight_report.train_loss[iter].to_bits(),
            outcome.report.train_loss[iter].to_bits(),
            "iteration {iter} diverged after elastic restart"
        );
    }
}

#[test]
fn corrupted_and_truncated_snapshots_are_rejected() {
    let path = snap_path("corrupt");
    let mut t = Trainer::launch(full_stack_cfg(4));
    t.train_more(2);
    t.save_snapshot(&path).expect("snapshot saved");
    t.shutdown();
    let clean = std::fs::read(&path).expect("snapshot bytes");
    let _ = std::fs::remove_file(&path);

    // Sanity: the pristine bytes load.
    Snapshot::decode(&clean).expect("clean snapshot decodes");

    // A single flipped bit anywhere in the body is caught by the checksum.
    let mut flipped = clean.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(
        matches!(
            Snapshot::decode(&flipped),
            Err(CkptError::ChecksumMismatch { .. })
        ),
        "bit flip at byte {mid} was accepted"
    );

    // Truncation (a crash mid-save) is caught by the length header.
    assert!(matches!(
        Snapshot::decode(&clean[..clean.len() / 2]),
        Err(CkptError::Truncated { .. })
    ));

    // A foreign file is rejected before any state is parsed.
    assert!(matches!(
        Snapshot::decode(b"definitely not a snapshot"),
        Err(CkptError::BadMagic)
    ));

    // And a truncated file on disk fails through the file API too.
    let half_path = snap_path("truncated");
    std::fs::write(&half_path, &clean[..clean.len() - 7]).expect("write half");
    let err = Trainer::restore_from_file(full_stack_cfg(4), &half_path);
    let _ = std::fs::remove_file(&half_path);
    assert!(matches!(err, Err(CkptError::Truncated { .. })));
}

#[test]
fn snapshot_refuses_to_restore_into_a_different_run() {
    let mut t = Trainer::launch(full_stack_cfg(4));
    t.train_more(1);
    let snap = t.snapshot();
    t.shutdown();

    // Different seed => different training state semantics.
    let mut other = full_stack_cfg(4);
    other.seed ^= 0xBAD;
    assert!(matches!(
        Trainer::restore(other, &snap),
        Err(CkptError::ConfigMismatch { .. })
    ));

    // Different compression plan.
    let baseline = TrainerConfig::tiny_test(QualityConfig::baseline(), 4);
    assert!(matches!(
        Trainer::restore(baseline, &snap),
        Err(CkptError::ConfigMismatch { .. })
    ));

    // Different world shape fails on the world check (fingerprint would
    // catch it too, but the world error is the actionable one).
    let mut wide = full_stack_cfg(4);
    wide.dp = 1;
    assert!(matches!(
        Trainer::restore(wide, &snap),
        Err(CkptError::WorldMismatch { .. })
    ));

    // A section with the wrong parameter shapes is rejected up front —
    // never handed to a worker where it would panic mid-restore.
    let mut bad = snap.clone();
    bad.ranks[0].params[0] = optimus::tensor::Matrix::zeros(1, 1);
    assert!(matches!(
        Trainer::restore(full_stack_cfg(4), &bad),
        Err(CkptError::Decode(_))
    ));
}

/// Serializes tests that script the process-global kernel knobs
/// (`set_kernel_threads`, `set_parallel_flop_threshold`): without the
/// lock, two such tests running in parallel threads of one binary could
/// overwrite each other's thread-count mid-scenario — the tests would
/// still pass (determinism means the knobs only change speed) but their
/// multi-thread premise would be silently defeated. The guard also
/// restores the FLOP threshold on drop, panic included.
struct KnobGuard {
    old_threshold: usize,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl KnobGuard {
    fn acquire() -> Self {
        static LOCK: Mutex<()> = Mutex::new(());
        let lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let old_threshold = optimus::tensor::parallel_flop_threshold();
        optimus::tensor::set_parallel_flop_threshold(0);
        Self {
            old_threshold,
            _lock: lock,
        }
    }
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        optimus::tensor::set_parallel_flop_threshold(self.old_threshold);
        optimus::tensor::set_kernel_threads(1);
    }
}

#[test]
fn resume_is_bit_exact_across_kernel_thread_counts() {
    // The kernel pool's determinism contract, end to end: training with a
    // 4-thread kernel pool and restoring the snapshot under a 1-thread
    // pool must reproduce the straight run's losses bit for bit. The
    // parallel-FLOP threshold is forced to zero so even the tiny test
    // model's GEMMs actually fan out to the pool.
    use optimus::tensor::set_kernel_threads;
    const TOTAL: u64 = 8;
    const SNAP_AT: u64 = 4;
    let _knobs = KnobGuard::acquire();

    // Straight single-threaded run as the reference trajectory.
    set_kernel_threads(1);
    let mut straight = Trainer::launch(full_stack_cfg(TOTAL));
    let straight_report = straight.train();
    straight.shutdown();

    // Train the first half under a 4-thread kernel pool, snapshot, kill.
    set_kernel_threads(4);
    let mut victim = Trainer::launch(full_stack_cfg(TOTAL));
    victim.train_more(SNAP_AT);
    let snap = victim.snapshot();
    victim.kill();

    // Restore and finish under a single-threaded pool.
    set_kernel_threads(1);
    let mut resumed = Trainer::restore(full_stack_cfg(TOTAL), &snap).expect("snapshot restores");
    resumed.train_more(TOTAL - SNAP_AT);
    let resumed_report = resumed.report();
    resumed.shutdown();

    for iter in SNAP_AT as usize..TOTAL as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {iter}: 1-thread straight {a} != 4->1-thread resumed {b}"
        );
    }
}

/// A [`ShardStore`] decorator that records every fetched name, so tests
/// can prove *who fetched what* during an elastic restore.
#[derive(Debug)]
struct CountingStore {
    inner: MemShardStore,
    gets: Mutex<HashMap<String, usize>>,
}

impl CountingStore {
    fn new() -> Self {
        Self {
            inner: MemShardStore::new(),
            gets: Mutex::new(HashMap::new()),
        }
    }

    fn get_count(&self, name: &str) -> usize {
        *self.gets.lock().unwrap().get(name).unwrap_or(&0)
    }

    fn reset_counts(&self) {
        self.gets.lock().unwrap().clear();
    }
}

impl ShardStore for CountingStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        self.inner.put(name, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        *self
            .gets
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0) += 1;
        self.inner.get(name)
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        self.inner.delete(name)
    }
}

/// A [`ShardStore`] decorator that refuses to publish the manifest —
/// simulating a coordinator crash after the workers' shard puts but
/// before the manifest commit.
#[derive(Debug)]
struct ManifestlessStore {
    inner: Arc<dyn ShardStore>,
}

impl ShardStore for ManifestlessStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), ShardStoreError> {
        if name == MANIFEST_FILE {
            return Err(ShardStoreError::Backend {
                name: name.to_string(),
                detail: "simulated crash before the manifest commit".to_string(),
            });
        }
        self.inner.put(name, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, ShardStoreError> {
        self.inner.get(name)
    }

    fn list(&self) -> Result<Vec<String>, ShardStoreError> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> Result<(), ShardStoreError> {
        self.inner.delete(name)
    }
}

#[test]
fn elastic_restore_from_shard_store_is_bit_exact_across_thread_counts() {
    // The headline cross-host guarantee, end to end: train under a
    // 4-thread kernel pool, publish per-rank shards, kill a rank (which
    // in this in-process world tears the whole job down, as losing a GPU
    // does to a 3D-parallel job), then relaunch every worker as a fresh
    // incarnation that self-restores from the shard store alone — under a
    // *1-thread* kernel pool — and finish the run. Losses and
    // traffic-ledger deltas must match the uninterrupted run bit for bit,
    // and the store's fetch counts must prove no rank fetched anything
    // but the manifest and its own shard.
    use optimus::tensor::set_kernel_threads;
    const TOTAL: u64 = 8;
    const SNAP_AT: u64 = 4;
    let _knobs = KnobGuard::acquire();

    // Reference trajectory with a traffic mark at the shard point.
    set_kernel_threads(1);
    let mut straight = Trainer::launch(full_stack_cfg(TOTAL));
    straight.train_more(SNAP_AT);
    let traffic_mid = straight.traffic();
    straight.train_more(TOTAL - SNAP_AT);
    let straight_report = straight.report();
    let traffic_end = straight.traffic();
    straight.shutdown();

    // Victim incarnation: 4-thread kernels, shards published at SNAP_AT,
    // then rank 1 (stage 1, dp 0) "dies" after doomed extra work.
    set_kernel_threads(4);
    let counting = Arc::new(CountingStore::new());
    let store: Arc<dyn ShardStore> = counting.clone();
    let cfg = full_stack_cfg(TOTAL);
    let world = cfg.pp * cfg.dp;
    let mut victim = Trainer::launch(cfg);
    victim.train_more(SNAP_AT);
    let manifest = victim.save_sharded(&store).expect("shards published");
    assert_eq!(manifest.shards.len(), world);
    victim.train_more(2); // progress the failure destroys
    victim.kill();
    counting.reset_counts();

    // Elastic restore at a different thread count: every worker is a
    // fresh incarnation holding nothing, self-restoring from the store.
    set_kernel_threads(1);
    let mut resumed =
        Trainer::restore_sharded(full_stack_cfg(TOTAL), &store).expect("elastic restore");
    assert_eq!(resumed.trained_iters(), SNAP_AT);

    // No coordinator-held state: each of the `world` shards was fetched
    // exactly once (by its own worker), and the manifest once per worker
    // plus once by the coordinator's validation pass.
    for entry in &manifest.shards {
        assert_eq!(
            counting.get_count(&entry.name),
            1,
            "{} fetched more than once — some rank pulled state that is not its own",
            entry.name
        );
    }
    assert_eq!(counting.get_count(MANIFEST_FILE), world + 1);

    resumed.train_more(TOTAL - SNAP_AT);
    let resumed_report = resumed.report();
    let resumed_traffic = resumed.traffic();
    resumed.shutdown();

    // Bit-exact losses after the restore point...
    for iter in SNAP_AT as usize..TOTAL as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {iter}: straight {a} != elastically restored {b}"
        );
    }
    // ...and bit-identical post-restore wire traffic, class by class.
    for class in TrafficClass::ALL {
        assert_eq!(
            traffic_end.bytes(class) - traffic_mid.bytes(class),
            resumed_traffic.bytes(class),
            "byte delta mismatch for {class}"
        );
        assert_eq!(
            traffic_end.messages(class) - traffic_mid.messages(class),
            resumed_traffic.messages(class),
            "message delta mismatch for {class}"
        );
    }
}

#[test]
fn restore_rank_rebuilds_each_worker_from_the_store_alone() {
    // The per-rank primitive: launch a fresh world that holds nothing,
    // then elastically restore every rank one at a time via
    // Trainer::restore_rank — each fetch independent, no rank ever handed
    // another's state — and finish the run bit-exactly.
    const TOTAL: u64 = 6;
    const SNAP_AT: u64 = 3;

    let mut straight = Trainer::launch(full_stack_cfg(TOTAL));
    let straight_report = straight.train();
    straight.shutdown();

    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let cfg = full_stack_cfg(TOTAL);
    let (pp, dp) = (cfg.pp, cfg.dp);
    let mut victim = Trainer::launch(cfg);
    victim.train_more(SNAP_AT);
    victim.save_sharded(&store).expect("shards published");
    victim.kill();

    let mut replacement = Trainer::launch(full_stack_cfg(TOTAL));
    for d in 0..dp {
        for s in 0..pp {
            let iter = replacement
                .restore_rank(s, d, &store)
                .expect("rank restores from its shard");
            assert_eq!(iter, SNAP_AT);
        }
    }
    assert_eq!(replacement.trained_iters(), SNAP_AT);
    let report = replacement.train();
    replacement.shutdown();

    for iter in SNAP_AT as usize..TOTAL as usize {
        assert_eq!(
            straight_report.train_loss[iter].to_bits(),
            report.train_loss[iter].to_bits(),
            "iteration {iter} diverged after per-rank elastic restore"
        );
    }
}

#[test]
fn interrupted_resave_leaves_previous_checkpoint_restorable() {
    // Crash-safety of repeated sharded saves: shards of the new
    // checkpoint land under fresh (iteration-qualified) names, so a save
    // that dies after the shard puts but before the manifest commit
    // leaves the *previous* manifest and every blob it names intact — the
    // run is still restorable from the old checkpoint.
    const TOTAL: u64 = 6;
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    let mut t = Trainer::launch(full_stack_cfg(TOTAL));
    t.train_more(2);
    let manifest = t.save_sharded(&store).expect("first save");
    t.train_more(2);
    let crashing: Arc<dyn ShardStore> = Arc::new(ManifestlessStore {
        inner: Arc::clone(&store),
    });
    let err = t
        .save_sharded(&crashing)
        .expect_err("simulated crash surfaces");
    assert!(matches!(err, CkptError::Store { .. }));
    t.kill();

    // The store still resolves to the iter-2 checkpoint, bit-for-bit.
    let mut resumed = Trainer::restore_sharded(full_stack_cfg(TOTAL), &store)
        .expect("previous checkpoint still restorable");
    assert_eq!(resumed.trained_iters(), manifest.meta.iter);
    resumed.train();
    resumed.shutdown();
}

#[test]
fn sharded_restore_rejects_bad_stores() {
    let store: Arc<dyn ShardStore> = Arc::new(MemShardStore::new());
    // Empty store: the rendezvous itself fails.
    assert!(matches!(
        Trainer::restore_sharded(full_stack_cfg(4), &store),
        Err(CkptError::Store { .. })
    ));

    let mut t = Trainer::launch(full_stack_cfg(4));
    t.train_more(2);
    let manifest = t.save_sharded(&store).expect("shards published");
    t.shutdown();

    // Wrong config: refused at the manifest, before any worker spawns a
    // fetch.
    let mut other = full_stack_cfg(4);
    other.seed ^= 0xBAD;
    assert!(matches!(
        Trainer::restore_sharded(other, &store),
        Err(CkptError::ConfigMismatch { .. })
    ));

    // A missing shard is a store-level NotFound surfaced as a typed
    // error, not a hang or a panic.
    let victim_name = manifest.shards[1].name.clone();
    let good = store.get(&victim_name).expect("shard bytes");
    let inner = MemShardStore::new();
    for name in store.list().expect("list") {
        if name != victim_name {
            inner.put(&name, &store.get(&name).unwrap()).unwrap();
        }
    }
    let partial: Arc<dyn ShardStore> = Arc::new(inner);
    assert!(matches!(
        Trainer::restore_sharded(full_stack_cfg(4), &partial),
        Err(CkptError::Store { .. })
    ));

    // A truncated shard fails the manifest's size check.
    store
        .put(&victim_name, &good[..good.len() - 9])
        .expect("truncate shard");
    assert!(matches!(
        Trainer::restore_sharded(full_stack_cfg(4), &store),
        Err(CkptError::Truncated { .. })
    ));
    store.put(&victim_name, &good).expect("restore shard");
    Trainer::restore_sharded(full_stack_cfg(4), &store)
        .expect("pristine store restores")
        .shutdown();
}

#[test]
fn resume_extends_beyond_original_horizon() {
    // Restoring into a config with more iterations is legitimate: train 3,
    // snapshot, and resume to 6 — Trainer::train picks up at the snapshot.
    let mut t = Trainer::launch(full_stack_cfg(3));
    t.train();
    let snap = t.snapshot();
    t.shutdown();

    let longer = full_stack_cfg(6);
    let mut resumed = Trainer::restore(longer, &snap).expect("longer horizon restores");
    let report = resumed.train();
    resumed.shutdown();
    assert_eq!(report.train_loss.len(), 6);
    for (iter, loss) in report.train_loss[3..].iter().enumerate() {
        assert!(loss.is_finite(), "iteration {} missing", iter + 3);
    }
}
