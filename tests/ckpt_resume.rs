//! The checkpoint subsystem's headline guarantee, exercised end to end:
//! train N iterations straight versus train k, snapshot, kill, restore,
//! train N−k — identical per-iteration losses and identical post-restore
//! traffic-ledger deltas, with every compression state object (PowerSGD
//! warm starts, LEP residuals, DP error feedback) round-tripping through
//! the on-disk format.

use optimus::ckpt::{CkptError, FaultPlan, Snapshot};
use optimus::core::{run_with_faults, QualityConfig, Trainer, TrainerConfig};
use optimus::net::TrafficClass;

fn snap_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("optimus-{tag}-{}.ckpt", std::process::id()))
}

/// Full Optimus-CC stack: CB (PowerSGD + LEP), fused embedding, selective
/// stage compression — the configuration with the most state to lose.
fn full_stack_cfg(iters: u64) -> TrainerConfig {
    TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), iters)
}

#[test]
fn resume_is_bit_exact_including_compression_state() {
    const TOTAL: u64 = 12;
    const SNAP_AT: u64 = 6;

    // Straight run, with a mid-run traffic mark at the snapshot point.
    let mut straight = Trainer::launch(full_stack_cfg(TOTAL));
    straight.train_more(SNAP_AT);
    let traffic_mid = straight.traffic();
    straight.train_more(TOTAL - SNAP_AT);
    let straight_report = straight.report();
    let traffic_end = straight.traffic();
    straight.shutdown();

    // Faulted run: snapshot at k, do some doomed extra work, kill, restore
    // from disk, finish.
    let path = snap_path("resume");
    let mut victim = Trainer::launch(full_stack_cfg(TOTAL));
    victim.train_more(SNAP_AT);
    victim.save_snapshot(&path).expect("snapshot saved");
    victim.train_more(2); // work that the failure will destroy
    victim.kill();

    let mut resumed =
        Trainer::restore_from_file(full_stack_cfg(TOTAL), &path).expect("snapshot restores");
    assert_eq!(resumed.trained_iters(), SNAP_AT);
    resumed.train_more(TOTAL - SNAP_AT);
    let resumed_report = resumed.report();
    let resumed_traffic = resumed.traffic();
    resumed.shutdown();
    let _ = std::fs::remove_file(&path);

    // Losses after the restore point must match the straight run *bit for
    // bit* — any forgotten state (an RNG counter, a residual, a warm-start
    // factor, an Adam moment) shows up here.
    for iter in SNAP_AT as usize..TOTAL as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {iter}: straight {a} != resumed {b}"
        );
    }
    // Pre-restore iterations belong to the killed incarnation.
    for iter in 0..SNAP_AT as usize {
        assert!(resumed_report.train_loss[iter].is_nan());
    }

    // Post-restore wire traffic must also be identical, class by class:
    // the resumed ledger (which starts at zero) equals the straight run's
    // delta over the same iterations.
    for class in TrafficClass::ALL {
        assert_eq!(
            traffic_end.bytes(class) - traffic_mid.bytes(class),
            resumed_traffic.bytes(class),
            "byte delta mismatch for {class}"
        );
        assert_eq!(
            traffic_end.messages(class) - traffic_mid.messages(class),
            resumed_traffic.messages(class),
            "message delta mismatch for {class}"
        );
    }
}

#[test]
fn fault_harness_reproduces_the_straight_run() {
    // The scripted-failure driver must land on the same trajectory.
    const TOTAL: u64 = 9;
    let cfg = full_stack_cfg(TOTAL);

    let mut straight = Trainer::launch(cfg.clone());
    let straight_report = straight.train();
    straight.shutdown();

    let plan = FaultPlan::new(1, 5, 3); // snapshot at 3 & 6, die at 5
    let outcome = run_with_faults(&cfg, &plan).expect("faulted run completes");
    assert_eq!(outcome.restarts, 1);
    assert_eq!(outcome.resumed_from, Some(3));
    assert_eq!(outcome.lost_iters, 2);
    for iter in 3..TOTAL as usize {
        assert_eq!(
            straight_report.train_loss[iter].to_bits(),
            outcome.report.train_loss[iter].to_bits(),
            "iteration {iter} diverged after elastic restart"
        );
    }
}

#[test]
fn corrupted_and_truncated_snapshots_are_rejected() {
    let path = snap_path("corrupt");
    let mut t = Trainer::launch(full_stack_cfg(4));
    t.train_more(2);
    t.save_snapshot(&path).expect("snapshot saved");
    t.shutdown();
    let clean = std::fs::read(&path).expect("snapshot bytes");
    let _ = std::fs::remove_file(&path);

    // Sanity: the pristine bytes load.
    Snapshot::decode(&clean).expect("clean snapshot decodes");

    // A single flipped bit anywhere in the body is caught by the checksum.
    let mut flipped = clean.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(
        matches!(
            Snapshot::decode(&flipped),
            Err(CkptError::ChecksumMismatch { .. })
        ),
        "bit flip at byte {mid} was accepted"
    );

    // Truncation (a crash mid-save) is caught by the length header.
    assert!(matches!(
        Snapshot::decode(&clean[..clean.len() / 2]),
        Err(CkptError::Truncated { .. })
    ));

    // A foreign file is rejected before any state is parsed.
    assert!(matches!(
        Snapshot::decode(b"definitely not a snapshot"),
        Err(CkptError::BadMagic)
    ));

    // And a truncated file on disk fails through the file API too.
    let half_path = snap_path("truncated");
    std::fs::write(&half_path, &clean[..clean.len() - 7]).expect("write half");
    let err = Trainer::restore_from_file(full_stack_cfg(4), &half_path);
    let _ = std::fs::remove_file(&half_path);
    assert!(matches!(err, Err(CkptError::Truncated { .. })));
}

#[test]
fn snapshot_refuses_to_restore_into_a_different_run() {
    let mut t = Trainer::launch(full_stack_cfg(4));
    t.train_more(1);
    let snap = t.snapshot();
    t.shutdown();

    // Different seed => different training state semantics.
    let mut other = full_stack_cfg(4);
    other.seed ^= 0xBAD;
    assert!(matches!(
        Trainer::restore(other, &snap),
        Err(CkptError::ConfigMismatch { .. })
    ));

    // Different compression plan.
    let baseline = TrainerConfig::tiny_test(QualityConfig::baseline(), 4);
    assert!(matches!(
        Trainer::restore(baseline, &snap),
        Err(CkptError::ConfigMismatch { .. })
    ));

    // Different world shape fails on the world check (fingerprint would
    // catch it too, but the world error is the actionable one).
    let mut wide = full_stack_cfg(4);
    wide.dp = 1;
    assert!(matches!(
        Trainer::restore(wide, &snap),
        Err(CkptError::WorldMismatch { .. })
    ));

    // A section with the wrong parameter shapes is rejected up front —
    // never handed to a worker where it would panic mid-restore.
    let mut bad = snap.clone();
    bad.ranks[0].params[0] = optimus::tensor::Matrix::zeros(1, 1);
    assert!(matches!(
        Trainer::restore(full_stack_cfg(4), &bad),
        Err(CkptError::Decode(_))
    ));
}

#[test]
fn resume_is_bit_exact_across_kernel_thread_counts() {
    // The kernel pool's determinism contract, end to end: training with a
    // 4-thread kernel pool and restoring the snapshot under a 1-thread
    // pool must reproduce the straight run's losses bit for bit. The
    // parallel-FLOP threshold is forced to zero so even the tiny test
    // model's GEMMs actually fan out to the pool.
    use optimus::tensor::{set_kernel_threads, set_parallel_flop_threshold};
    const TOTAL: u64 = 8;
    const SNAP_AT: u64 = 4;
    // Sibling tests in this binary never read these process-global knobs,
    // and the determinism contract means the knobs can only change speed —
    // still, restore the threshold when done so concurrent tests don't
    // fan tiny GEMMs out to threads for the rest of the run.
    let old_threshold = optimus::tensor::parallel_flop_threshold();
    set_parallel_flop_threshold(0);

    // Straight single-threaded run as the reference trajectory.
    set_kernel_threads(1);
    let mut straight = Trainer::launch(full_stack_cfg(TOTAL));
    let straight_report = straight.train();
    straight.shutdown();

    // Train the first half under a 4-thread kernel pool, snapshot, kill.
    set_kernel_threads(4);
    let mut victim = Trainer::launch(full_stack_cfg(TOTAL));
    victim.train_more(SNAP_AT);
    let snap = victim.snapshot();
    victim.kill();

    // Restore and finish under a single-threaded pool.
    set_kernel_threads(1);
    let mut resumed = Trainer::restore(full_stack_cfg(TOTAL), &snap).expect("snapshot restores");
    resumed.train_more(TOTAL - SNAP_AT);
    let resumed_report = resumed.report();
    resumed.shutdown();

    for iter in SNAP_AT as usize..TOTAL as usize {
        let a = straight_report.train_loss[iter];
        let b = resumed_report.train_loss[iter];
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {iter}: 1-thread straight {a} != 4->1-thread resumed {b}"
        );
    }
    set_parallel_flop_threshold(old_threshold);
}

#[test]
fn resume_extends_beyond_original_horizon() {
    // Restoring into a config with more iterations is legitimate: train 3,
    // snapshot, and resume to 6 — Trainer::train picks up at the snapshot.
    let mut t = Trainer::launch(full_stack_cfg(3));
    t.train();
    let snap = t.snapshot();
    t.shutdown();

    let longer = full_stack_cfg(6);
    let mut resumed = Trainer::restore(longer, &snap).expect("longer horizon restores");
    let report = resumed.train();
    resumed.shutdown();
    assert_eq!(report.train_loss.len(), 6);
    for (iter, loss) in report.train_loss[3..].iter().enumerate() {
        assert!(loss.is_finite(), "iteration {} missing", iter + 3);
    }
}
