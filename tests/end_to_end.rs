//! Cross-crate integration tests: the full Optimus-CC stack exercised
//! through the umbrella crate's public API.

use optimus::core::{QualityConfig, Trainer, TrainerConfig};
use optimus::data::ZeroShotTask;
use optimus::model::GptConfig;
use optimus::net::TrafficClass;
use optimus::schedule::{epilogue_sends, one_f_one_b};
use optimus::sim::{breakdown, simulate, CompressionPlan, SimConfig};

#[test]
fn simulator_and_trainer_agree_on_technique_direction() {
    // Both substrates must agree: full Optimus-CC reduces total bytes on
    // the wire vs the baseline.
    let sim_base = simulate(&SimConfig::paper_gpt_2_5b());
    let sim_opt = simulate(&SimConfig::paper_gpt_2_5b().with_plan(CompressionPlan::cb_fe_sc()));
    assert!(sim_opt.iteration_time_s < sim_base.iteration_time_s);
    assert!(sim_opt.dp_bytes < sim_base.dp_bytes);
    assert!(sim_opt.emb_bytes < sim_base.emb_bytes);
    assert!(sim_opt.interstage_bytes < sim_base.interstage_bytes);

    let run = |q: QualityConfig| {
        let mut t = Trainer::launch(TrainerConfig::tiny_test(q, 5));
        let r = t.train();
        t.shutdown();
        r.traffic
    };
    let tr_base = run(QualityConfig::baseline());
    let tr_opt = run(QualityConfig::cb_fe_sc());
    assert!(tr_opt.total_bytes() < tr_base.total_bytes());
    assert!(tr_opt.bytes(TrafficClass::Embedding) < tr_base.bytes(TrafficClass::Embedding));
}

#[test]
fn schedule_epilogue_matches_simulated_exposure() {
    // The epilogue set from opt-schedule is exactly what the simulator
    // compresses under CB: compressing it must shrink inter-stage bytes
    // by (roughly) the epilogue volume.
    let cfg = SimConfig::paper_gpt_2_5b();
    let base = simulate(&cfg);
    let cb = simulate(&cfg.clone().with_plan(CompressionPlan::cb()));
    let n_epilogue = epilogue_sends(cfg.pp, cfg.n_micro).len() as f64;
    let dense = cfg.act_volume_bytes();
    let saved = base.interstage_bytes - cb.interstage_bytes;
    // Saved bytes ~ n_epilogue * (dense - compressed).
    assert!(
        saved > n_epilogue * dense * 0.9,
        "CB saved {saved:.3e}, expected ~{:.3e}",
        n_epilogue * dense
    );
}

#[test]
fn full_paper_pipeline_smoke() {
    // A miniature rendition of the paper's whole evaluation: pretrain,
    // validate, run zero-shot, check traffic, all under full Optimus-CC.
    let mut cfg = TrainerConfig::tiny_test(QualityConfig::cb_fe_sc(), 30);
    cfg.validate_every = 10;
    let mut t = Trainer::launch(cfg);
    let report = t.train();
    assert!(report.val_points.len() >= 3);
    assert!(report.final_val_ppl().is_finite());
    let score = t.zero_shot(ZeroShotTask::MarkovNext, 40, 3);
    assert_eq!(score.total, 40);
    t.shutdown();
}

#[test]
fn paper_scale_configs_simulate_consistently() {
    // Every paper-scale model simulates, and iteration time is monotone
    // in model size under fixed parallelism where it fits.
    let t25 = simulate(&SimConfig::paper_gpt_2_5b()).iteration_time_s;
    let t83 = simulate(&SimConfig::paper_gpt_8_3b()).iteration_time_s;
    let t92 = simulate(&SimConfig::paper_defaults(GptConfig::gpt_9_2b())).iteration_time_s;
    assert!(t25 < t83 && t83 < t92);
}

#[test]
fn breakdown_is_stable_across_repeat_runs() {
    // The simulator is deterministic: repeated breakdowns are identical.
    let cfg = SimConfig::paper_gpt_8_3b().with_plan(CompressionPlan::cb_fe());
    let a = breakdown(&cfg);
    let b = breakdown(&cfg);
    assert_eq!(a, b);
}

#[test]
fn one_f_one_b_drives_model_fifo_contract() {
    // The schedule validator and the model's FIFO caches together
    // guarantee pipelined correctness; spot-check the structural fact the
    // contract rests on: backwards retire in micro order on every stage.
    let sched = one_f_one_b(4, 16);
    sched.validate().expect("schedule invariants hold");
}
