//! Guards the umbrella crate's re-export wiring: if a workspace manifest or
//! a `pub use` in `src/lib.rs` regresses, these paths stop resolving and
//! `cargo test` fails at compile time, before any behavioral test runs.

use optimus::compress::{Compressor, PowerSgd};
use optimus::core::{QualityConfig, Trainer, TrainerConfig};
use optimus::tensor::Matrix;

#[test]
fn tensor_reexport_resolves() {
    let m = Matrix::zeros(3, 2);
    assert_eq!(m.rows(), 3);
}

#[test]
fn compress_reexport_resolves() {
    let mut comp = PowerSgd::new(2, 7);
    let grad = Matrix::zeros(8, 4);
    let payload = comp.compress(&grad);
    let restored = payload.decompress();
    assert_eq!(restored.rows(), 8);
}

#[test]
fn core_reexport_resolves() {
    let mut trainer = Trainer::launch(TrainerConfig::tiny_test(QualityConfig::baseline(), 1));
    trainer.train_more(0);
    trainer.shutdown();
}

#[test]
fn remaining_subsystem_reexports_resolve() {
    // One symbol per remaining re-exported crate, so a dropped `pub use`
    // or manifest edge is caught no matter which subsystem it touches.
    let _ = optimus::ckpt::FaultPlan::new(0, 1, 1);
    let _ = optimus::data::ZeroShotTask::ALL;
    let _ = optimus::model::GptConfig::gpt_2_5b();
    let _ = optimus::net::CollectiveWorld::new(1);
    let _ = optimus::schedule::one_f_one_b;
    let _ = optimus::sim::SimConfig::paper_gpt_2_5b();
}
