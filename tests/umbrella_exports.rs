//! Guards the umbrella crate's re-export wiring: if a workspace manifest or
//! a `pub use` in `src/lib.rs` regresses, these paths stop resolving and
//! `cargo test` fails at compile time, before any behavioral test runs.

use optimus::compress::{Compressor, PowerSgd};
use optimus::core::{QualityConfig, Trainer, TrainerConfig};
use optimus::tensor::Matrix;

#[test]
fn tensor_reexport_resolves() {
    let m = Matrix::zeros(3, 2);
    assert_eq!(m.rows(), 3);
}

#[test]
fn compress_reexport_resolves() {
    let mut comp = PowerSgd::new(2, 7);
    let grad = Matrix::zeros(8, 4);
    let payload = comp.compress(&grad);
    let restored = payload.decompress();
    assert_eq!(restored.rows(), 8);
}

#[test]
fn core_reexport_resolves() {
    let mut trainer = Trainer::launch(TrainerConfig::tiny_test(QualityConfig::baseline(), 1));
    trainer.train_more(0);
    trainer.shutdown();
}

#[test]
fn remaining_subsystem_reexports_resolve() {
    // One symbol per remaining re-exported crate, so a dropped `pub use`
    // or manifest edge is caught no matter which subsystem it touches.
    let _ = optimus::ckpt::FaultPlan::new(0, 1, 1);
    let _ = optimus::data::ZeroShotTask::ALL;
    let _ = optimus::model::GptConfig::gpt_2_5b();
    let _ = optimus::net::CollectiveWorld::new(1);
    let _ = optimus::schedule::one_f_one_b;
    let _ = optimus::sim::SimConfig::paper_gpt_2_5b();
}

#[test]
fn transport_reexports_resolve() {
    use optimus::net::{LocalTransport, Transport};
    // The pluggable transport surface: both backends, the wire framing
    // constants, the tunable timeout, and the remote shard store.
    let local = LocalTransport::new(2);
    local
        .send(0, 1, optimus::net::channel_id(7, 0), vec![1, 2])
        .expect("send");
    assert_eq!(local.world(), 2);
    let _ = optimus::net::net_timeout();
    assert_eq!(optimus::net::WIRE_MAGIC, b"OPTWIRE\0");
    let _ = optimus::net::WIRE_OVERHEAD_BYTES;
    let _ = optimus::net::TcpShardStore::connect("127.0.0.1:9".parse().unwrap());
    let _ = optimus::ckpt::framing::fnv1a64(b"shared framing");
    // The multi-process runtime surface.
    let _ = optimus::core::ProcOptions {
        worker_bin: "opt-worker".into(),
        store_addr: "127.0.0.1:9".parse().unwrap(),
        scratch_dir: std::env::temp_dir(),
    };
    let _ = optimus::core::ProcFaultOptions {
        worker_bin: "opt-worker".into(),
        scratch_dir: std::env::temp_dir(),
        store_dir: None,
    };
}

#[test]
fn trace_reexports_resolve() {
    use optimus::trace::{SpanKind, Trace, TraceMode};
    // The observability surface: the env-gated mode, the merged trace
    // with its structural digest, the analyzer, and the core aliases.
    assert_eq!(TraceMode::parse("spans"), Some(TraceMode::Spans));
    assert_eq!(TraceMode::default(), TraceMode::Off);
    let trace = Trace::merge(Vec::new());
    assert_eq!(trace.span_count(), 0);
    assert_eq!(SpanKind::Forward.name(), "forward");
    let report = optimus::trace::analyze(&trace, 1);
    assert!(report.ranks.is_empty());
    let _ = optimus::trace::render(&report);
    // The trainer-facing aliases re-exported through optimus::core.
    let _: optimus::core::TraceMode = optimus::trace::TraceMode::Spans;
}

#[test]
fn elastic_restore_reexports_resolve() {
    // The sharded-checkpoint surface: formats in ckpt, the store in net,
    // the cost model in sim.
    let _ = optimus::ckpt::shard_file_name(0, 0, 0);
    let _ = optimus::ckpt::MANIFEST_FILE;
    let _ = optimus::ckpt::SHARD_FORMAT_VERSION;
    let store: &dyn optimus::net::ShardStore = &optimus::net::MemShardStore::new();
    store.put("manifest.ckpt", b"x").expect("put");
    let _ = optimus::net::FsShardStore::new("never-created");
    let costs = optimus::sim::CkptCostModel::paper_cluster();
    // On a paper-scale (tens of GB) snapshot, parallel per-rank fetches
    // beat the monolithic broadcast despite the rendezvous round-trip.
    assert!(costs.sharded_io_s(1e11, 64) < costs.monolithic_io_s(1e11));
}
