//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds offline, so this crate reimplements the subset of
//! the Criterion 0.5 API the `opt-bench` benches use: [`Criterion`],
//! benchmark groups with [`Throughput`] annotations and per-group
//! `sample_size`, [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Statistical rigor is *not* a goal — CI just needs the benches to compile
//! and run quickly. Each benchmark warms up once, then runs batches of
//! doubling size until a small wall-clock budget is spent, and reports the
//! mean time per iteration (plus derived throughput when annotated).
//! Set `OPT_BENCH_MIN_TIME_MS` to raise the per-benchmark budget when you
//! want steadier numbers locally.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration budget floor, overridable via `OPT_BENCH_MIN_TIME_MS`.
fn min_time() -> Duration {
    let ms = std::env::var("OPT_BENCH_MIN_TIME_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20u64);
    Duration::from_millis(ms)
}

/// Entry point handed to each `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group; results print as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 0,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, None, 0, &mut f);
        self
    }
}

/// Identifies a benchmark within a group, e.g. `from_parameter(rank)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Units for derived-rate reporting on a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a per-iteration work volume.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Caps measured iterations (Criterion's sample count; here a cap on
    /// timed iterations so slow benches stay cheap in CI).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.throughput,
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    let mut b = Bencher {
        budget: min_time(),
        max_iters: if sample_size == 0 {
            u64::MAX
        } else {
            sample_size as u64
        },
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => format!("  {:.3} GiB/s", gib_per_s(bytes, per_iter)),
        Throughput::Elements(n) => format!("  {:.3} Melem/s", melem_per_s(n, per_iter)),
    });
    println!(
        "bench: {:<44} {:>12}/iter ({} iters){}",
        label,
        format_duration(per_iter),
        b.iters,
        rate.unwrap_or_default()
    );
}

fn gib_per_s(bytes: u64, per_iter: Duration) -> f64 {
    if per_iter.is_zero() {
        return f64::INFINITY;
    }
    bytes as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64
}

fn melem_per_s(elems: u64, per_iter: Duration) -> f64 {
    if per_iter.is_zero() {
        return f64::INFINITY;
    }
    elems as f64 / per_iter.as_secs_f64() / 1e6
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{} ns", ns)
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`: one warmup call, then doubling batches until the
    /// wall-clock budget (or the group's `sample_size` cap) is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total = Duration::ZERO;
        while total < self.budget && total_iters < self.max_iters {
            let batch_now = batch.min(self.max_iters - total_iters);
            let start = Instant::now();
            for _ in 0..batch_now {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            total_iters += batch_now;
            batch = batch.saturating_mul(2);
        }
        self.iters = total_iters;
        self.elapsed = total;
    }
}

/// Re-export so `criterion::black_box` call sites resolve.
pub use std::hint::black_box;

/// Declares a benchmark group function list, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring Criterion's macro. Cargo passes
/// `--bench` (and possibly a filter) to the binary; the shim ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
