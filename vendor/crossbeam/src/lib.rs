//! Vendored stand-in for `crossbeam`, providing the `channel` module subset
//! the reproduction uses.
//!
//! The workspace builds offline, so [`channel`] reimplements crossbeam's
//! unbounded MPMC channel over a mutex-protected `VecDeque` plus a condvar.
//! The properties the reproduction relies on hold: both [`channel::Sender`]
//! and [`channel::Receiver`] are cheaply clonable (`P2pMesh` derives
//! `Clone` over vectors of both), FIFO order is preserved per channel, and
//! disconnection is reported when the counterpart side is fully dropped.
//! Throughput is adequate for the matrix-sized messages the trainer moves;
//! swap in real crossbeam for lock-free performance when networking allows.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back, like crossbeam's.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug does not require `T: Debug` — the
    // payload is elided so `.expect()` works on channels of any type.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel. Clonable; the channel
    /// disconnects for receivers once all clones are dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable (MPMC); each
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared.lock().push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (s, r) = unbounded();
            for i in 0..100 {
                s.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(r.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (s, r) = unbounded::<i32>();
            s.send(1).unwrap();
            drop(s);
            assert_eq!(r.recv().unwrap(), 1);
            assert_eq!(r.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (s, r) = unbounded();
            drop(r);
            assert_eq!(s.send(7), Err(SendError(7)));
        }

        #[test]
        fn timeout_fires_when_empty() {
            let (_s, r) = unbounded::<i32>();
            assert_eq!(
                r.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (s, r) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..1000 {
                    s.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 1000 {
                got.push(r.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn clone_receiver_drains_disjointly() {
            let (s, r1) = unbounded();
            let r2 = r1.clone();
            s.send(1).unwrap();
            s.send(2).unwrap();
            let a = r1.try_recv().unwrap();
            let b = r2.try_recv().unwrap();
            assert_eq!((a, b), (1, 2));
        }
    }
}
