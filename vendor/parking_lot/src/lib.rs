//! Vendored stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! The workspace builds offline, so this provides the `parking_lot` API
//! surface the reproduction uses — [`Mutex`] with panic-free `lock()` /
//! `into_inner()`, [`Condvar`] whose `wait` takes `&mut MutexGuard`, and
//! [`RwLock`] — by wrapping the std primitives. Like real `parking_lot`
//! (and unlike raw std), poisoning is absorbed: a panicking thread does not
//! make the lock unusable for everyone else.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily move
/// the underlying std guard out (std's `wait` consumes its guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard vacated during Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard vacated during Condvar::wait")
    }
}

/// A condition variable whose `wait` mutates the guard in place, matching
/// `parking_lot`'s signature.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard
            .inner
            .take()
            .expect("guard vacated during Condvar::wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses; returns `true` on timeout
    /// (matching `parking_lot::WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard
            .inner
            .take()
            .expect("guard vacated during Condvar::wait_for");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        res.timed_out()
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader–writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        assert!(pair.1.wait_for(&mut g, Duration::from_millis(10)));
    }
}
