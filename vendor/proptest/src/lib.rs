//! Vendored minimal property-testing runner exposing the subset of the
//! `proptest` API the reproduction's test suites use.
//!
//! The workspace builds offline, so the real `proptest` is unavailable.
//! This shim keeps the same source syntax — `proptest! { #[test] fn f(x in
//! strategy) { .. } }`, `prop_assert*!`, `prop_assume!`, `ProptestConfig`,
//! `Strategy`/`prop_map`, `proptest::collection::vec` — backed by a small
//! deterministic runner:
//!
//! * Each test case draws its inputs from a ChaCha8 stream seeded by the
//!   test's `module_path!()::name` and the case index, so failures are
//!   reproducible run-to-run and across machines.
//! * No shrinking: a failing case reports the case index and the failed
//!   assertion instead of a minimized input. (Re-run under the real
//!   proptest if minimization is ever needed.)
//! * `prop_assume!` rejections skip the case; a test aborts if rejections
//!   exceed 16× the requested case count, like proptest's global reject cap.

// The `#[test]` tokens inside the `proptest!` doc example below are the
// macro's documented surface syntax, not unit tests mistakenly placed in a
// doctest; the example itself runs under `cargo test --doc`.
#![allow(clippy::test_attr_in_doctest)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod strategy;

pub mod test_runner {
    use super::*;

    /// Per-test configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; keep that so coverage is
            // comparable when the shim is swapped out.
            Self { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; draw another case.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng {
        pub(crate) rng: ChaCha8Rng,
    }

    impl TestRng {
        /// Derives the RNG for `(test, case)`. FNV-1a over the test path
        /// keeps seeds stable across runs and platforms.
        pub fn for_case(test_path: &str, case: u64) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                rng: ChaCha8Rng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }
    }

    /// Drives one property: draws cases, counts rejections, panics on the
    /// first failure. Called by the expansion of [`crate::proptest!`].
    pub fn run_cases(
        config: &ProptestConfig,
        test_path: &str,
        mut one_case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = (config.cases as u64).saturating_mul(16).max(16);
        while accepted < config.cases {
            if attempts >= max_attempts {
                panic!(
                    "{test_path}: too many prop_assume! rejections \
                     ({attempts} attempts for {accepted} accepted cases)"
                );
            }
            let mut rng = TestRng::for_case(test_path, attempts);
            attempts += 1;
            match one_case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_path}: property failed at deterministic case #{}: {msg}",
                        attempts - 1
                    );
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` of `len` elements drawn from `element`.
    ///
    /// The real proptest accepts a size *range* here; the reproduction only
    /// passes exact lengths, so the shim takes `usize`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    /// Alias matching `proptest::prelude::prop`.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal @munch arms must precede the public catch-all arm: macro_rules
    // tries arms top-to-bottom, and the catch-all matches `@munch ...` too
    // (matching it there would recurse forever).
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let path = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run_cases(&config, path, |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                #[allow(unreachable_code)]
                {
                    $body
                    ::std::result::Result::Ok(())
                }
            });
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects the current case, drawing a fresh one instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_assume((a, b) in (0u64..100, 0u64..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_parses(x in 0i32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn vec_strategy_and_prop_map() {
        let strat = crate::collection::vec(0.0f32..1.0, 12).prop_map(|v| v.len());
        let mut rng = TestRng::for_case("shim::vec", 0);
        assert_eq!(strat.generate(&mut rng), 12);
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = 0u64..1_000_000;
        let a = strat.generate(&mut TestRng::for_case("shim::det", 3));
        let b = (0u64..1_000_000).generate(&mut TestRng::for_case("shim::det", 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "shim::fail", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
