//! The [`Strategy`] trait and the combinators the reproduction uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a value from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        loop {
            if let Some(c) = char::from_u32(rng.rng.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}
