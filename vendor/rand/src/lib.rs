//! Vendored stand-in for the `rand` crate.
//!
//! The workspace builds offline, so this crate reimplements the (small)
//! subset of the `rand` 0.8 API the reproduction uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, `gen`, and `gen_range` over half-open
//! ranges of the primitive types. Distribution quality matches what the
//! reproduction needs (uniform via 64-bit widening multiply, floats from
//! the high mantissa bits); bit-compatibility with upstream `rand` is *not*
//! a goal — determinism within this workspace is.

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`, expanding it to the full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a primitive type uniformly over its full domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (f64::sample(self)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their natural domain (the shim's
/// equivalent of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` from the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` via 128-bit widening multiply.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below_u64(rng, span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * f32::sample(rng);
        // Guard against the rounding edge case v == end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * f64::sample(rng);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// SplitMix64, used to expand 64-bit seeds into full generator state.
/// (Same constants as the reference implementation.)
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm64(u64);
    impl RngCore for Sm64 {
        fn next_u64(&mut self) -> u64 {
            split_mix_64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Sm64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Sm64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn integer_range_covers_both_endpoints_region() {
        let mut rng = Sm64(42);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
