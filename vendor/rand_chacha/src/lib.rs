//! Vendored stand-in for `rand_chacha`: a real ChaCha8 block cipher used as
//! a deterministic RNG.
//!
//! The workspace builds offline, so this reimplements [`ChaCha8Rng`] against
//! the vendored `rand` shim traits. The keystream is genuine ChaCha with 8
//! rounds (RFC 7539 quarter-round over the standard 4×4 state), seeded by
//! SplitMix64 key expansion. Streams are bit-reproducible across runs and
//! platforms — which is what the reproduction's `SeedStream` requires — but
//! not bit-identical to upstream `rand_chacha` (different seed expansion).

use rand::{split_mix_64, RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// A ChaCha8-based deterministic random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key, fixed per seed.
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (words 12..16 of the state).
    counter: u64,
    nonce: [u32; 2],
    /// Current keystream block and read position within it.
    block: [u32; BLOCK_WORDS],
    word_pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k", the standard ChaCha constant.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [0; BLOCK_WORDS];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, inp) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(inp);
        }

        self.block = state;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.word_pos >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    /// Number of `u32` words in a serialized RNG state
    /// (key 8 + counter 2 + nonce 2 + block 16 + word position 1).
    pub const STATE_WORDS: usize = 29;

    /// Exports the complete generator state as a flat word array, suitable
    /// for checkpointing. [`ChaCha8Rng::from_state_words`] restores a
    /// generator that continues the keystream bit-exactly.
    pub fn state_words(&self) -> [u32; Self::STATE_WORDS] {
        let mut out = [0u32; Self::STATE_WORDS];
        out[..8].copy_from_slice(&self.key);
        out[8] = self.counter as u32;
        out[9] = (self.counter >> 32) as u32;
        out[10] = self.nonce[0];
        out[11] = self.nonce[1];
        out[12..28].copy_from_slice(&self.block);
        out[28] = self.word_pos as u32;
        out
    }

    /// Rebuilds a generator from [`ChaCha8Rng::state_words`] output.
    /// Returns `None` if the word position is out of range (corrupt state).
    pub fn from_state_words(words: [u32; Self::STATE_WORDS]) -> Option<Self> {
        let word_pos = words[28] as usize;
        if word_pos > BLOCK_WORDS {
            return None;
        }
        let mut key = [0u32; 8];
        key.copy_from_slice(&words[..8]);
        let mut block = [0u32; BLOCK_WORDS];
        block.copy_from_slice(&words[12..28]);
        Some(Self {
            key,
            counter: (words[8] as u64) | ((words[9] as u64) << 32),
            nonce: [words[10], words[11]],
            block,
            word_pos,
        })
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = split_mix_64(&mut sm);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        let w = split_mix_64(&mut sm);
        Self {
            key,
            counter: 0,
            nonce: [w as u32, (w >> 32) as u32],
            block: [0; BLOCK_WORDS],
            // Start exhausted so the first draw computes a block.
            word_pos: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..23 {
            a.next_u32(); // land mid-block
        }
        let mut b = ChaCha8Rng::from_state_words(a.state_words()).expect("valid state");
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn corrupt_word_pos_is_rejected() {
        let mut words = ChaCha8Rng::seed_from_u64(1).state_words();
        words[28] = 17; // > BLOCK_WORDS
        assert!(ChaCha8Rng::from_state_words(words).is_none());
    }

    #[test]
    fn keystream_looks_balanced() {
        // Crude sanity check on the block function: bit density ~50 %.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let density = ones as f64 / (1024.0 * 64.0);
        assert!((density - 0.5).abs() < 0.02, "bit density {density}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
