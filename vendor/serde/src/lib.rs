//! Vendored stand-in for `serde`.
//!
//! The workspace builds offline and only ever uses
//! `#[derive(Serialize, Deserialize)]` as a forward-compatibility marker on
//! config/result structs — no code path serializes anything yet. This crate
//! provides the two trait names (with blanket impls so bounds are always
//! satisfiable) and re-exports the no-op derive macros, mirroring how the
//! real `serde` crate exposes `serde_derive` under the `derive` feature.
//!
//! When a future PR needs real (de)serialization, replace this shim with the
//! real crates.io `serde` and the derive bodies get generated for the exact
//! same source annotations.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
