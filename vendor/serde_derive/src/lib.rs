//! Vendored stand-in for `serde_derive`.
//!
//! The workspace builds offline, so the real `serde_derive` (and its `syn`
//! dependency tree) is unavailable. The reproduction only uses
//! `#[derive(Serialize, Deserialize)]` as a marker — nothing serializes at
//! runtime — so these derives expand to nothing. The matching marker traits
//! live in the vendored `serde` crate and carry blanket impls.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
